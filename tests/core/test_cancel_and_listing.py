"""Tests for user-driven cancel and job listing."""


from repro.core import statuses as st

from tests.core.conftest import (
    make_manifest,
    make_platform,
    run_to_terminal,
    submit,
)


def test_cancel_running_job_releases_resources():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(iterations=50_000,
                                                 ckpt=1000))
    job = platform.job(job_id)
    while job.status.current != st.PROCESSING and env.now < 2000:
        env.run(until=env.now + 5)
    env.run_until_complete(platform.cancel_job(job_id),
                           limit=env.now + 100)
    env.run(until=env.now + 60)
    assert job.status.current == st.HALTED
    assert platform.cluster.allocated_gpus() == 0
    assert platform.learner_pods(job_id) == []


def test_cancel_queued_job():
    env, platform = make_platform(nodes=1, gpus_per_node=4)
    blocker = submit(env, platform,
                     make_manifest(name="blocker", learners=1, gpus=4,
                                   iterations=50_000))
    env.run(until=env.now + 60)
    queued = submit(env, platform,
                    make_manifest(name="queued", learners=1, gpus=4,
                                  iterations=100))
    env.run(until=env.now + 30)
    env.run_until_complete(platform.cancel_job(queued),
                           limit=env.now + 100)
    env.run(until=env.now + 60)
    assert platform.job(queued).status.current == st.HALTED
    # The blocker is untouched.
    assert platform.job(blocker).status.current == st.PROCESSING


def test_cancelled_job_can_resume():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(iterations=2500,
                                                 ckpt=500))
    job = platform.job(job_id)
    while job.learner_states[0].iterations_done < 600 and env.now < 5000:
        env.run(until=env.now + 10)
    env.run_until_complete(platform.cancel_job(job_id),
                           limit=env.now + 100)
    env.run(until=env.now + 30)
    env.run_until_complete(platform.resume_job(job_id),
                           limit=env.now + 100)
    assert run_to_terminal(env, platform, job_id, limit=1e7) == \
        st.COMPLETED


def test_cancel_terminal_job_is_noop():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(iterations=100))
    run_to_terminal(env, platform, job_id)
    status = env.run_until_complete(platform.cancel_job(job_id),
                                    limit=env.now + 100)
    assert status == st.COMPLETED


def test_list_jobs_filters_by_user():
    env, platform = make_platform()
    a = submit(env, platform, make_manifest(name="a", user="alice",
                                            iterations=100))
    env.run(until=env.now + 5)
    b = submit(env, platform, make_manifest(name="b", user="bob",
                                            iterations=100))
    all_jobs = platform.list_jobs()
    assert [j.job_id for j in all_jobs] == [a, b]  # submission order
    alice_jobs = platform.list_jobs(user="alice")
    assert [j.job_id for j in alice_jobs] == [a]
