"""Chaos soak test: random faults against a busy platform.

The related-work section cites chaos engineering (Netflix Simian Army,
Facebook Storm) as the discipline FfDL's defenses were built for.  This
test runs a loaded platform while randomly crashing learners, helpers,
guardians, microservice replicas and whole nodes, then asserts the
platform-wide invariants:

* every submitted job eventually reaches a terminal state,
* jobs with checkpointing (or parameter servers) complete despite faults,
* no GPU is leaked once the cluster drains,
* MongoDB's terminal status agrees with the platform's,
* no node is ever over-allocated at any observation point.
"""

import pytest

from repro.core import PlatformConfig, statuses as st

from tests.core.conftest import make_manifest, make_platform, submit


def check_no_overallocation(platform):
    for allocation in platform.cluster.allocations.values():
        assert 0 <= allocation.free_gpus <= allocation.capacity.gpus
        assert allocation.free_cpus >= -1e-9


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chaos_soak(seed):
    config = PlatformConfig(node_detection_latency_s=10.0,
                            pod_eviction_timeout_s=10.0)
    env, platform = make_platform(seed=seed, nodes=4, config=config)
    rng = platform.rng.stream("chaos-test")

    job_ids = []
    for i in range(6):
        manifest = make_manifest(
            name=f"chaos-{i}",
            learners=rng.choice([1, 2]),
            gpus=rng.choice([1, 2]),
            iterations=rng.choice([1500, 2500]),
            ckpt=500)
        if i % 3 == 2:
            manifest.parameter_servers = 1
        job_ids.append(submit(env, platform, manifest))
        env.run(until=env.now + rng.uniform(5, 30))

    deadline = env.now + 40_000
    faults_injected = 0
    while env.now < deadline:
        env.run(until=env.now + rng.uniform(40, 120))
        check_no_overallocation(platform)
        if all(platform.job(j).status.is_terminal for j in job_ids):
            break
        roll = rng.random()
        live_pods = [p for p in platform.cluster.api.list_pods()
                     if p.phase == "Running"
                     and p.meta.labels.get("type") in
                     ("learner", "lhelper", "jobmonitor")]
        if roll < 0.35 and live_pods:
            victim = rng.choice(live_pods)
            platform.kill_pod_containers(victim.name)
            faults_injected += 1
        elif roll < 0.5:
            platform.crash_api_replica()
            platform.crash_lcm_replica()
            faults_injected += 1
        elif roll < 0.65:
            node = rng.choice(sorted(platform.cluster.kubelets))
            if platform.cluster.node_is_alive(node):
                platform.cluster.fail_node(node)
                faults_injected += 1

                def recover(node=node):
                    yield env.timeout(rng.uniform(30, 120))
                    platform.cluster.recover_node(node)

                env.process(recover())
    assert faults_injected >= 3

    # Every job terminal; checkpointed/PS jobs must have COMPLETED.
    for job_id in job_ids:
        job = platform.job(job_id)
        assert job.status.is_terminal or \
            job.status.current == st.HALTED, job_id
        assert job.status.current in (st.COMPLETED, st.FAILED)
        if job.status.current == st.COMPLETED:
            assert all(s.iterations_done == job.manifest.iterations
                       for s in job.learner_states)
        doc = platform.mongo.collection("jobs").find_one({"_id": job_id})
        env.run(until=env.now + 5)
        doc = platform.mongo.collection("jobs").find_one({"_id": job_id})
        assert doc["status"] == job.status.current

    # Drain: all resources returned.
    env.run(until=env.now + 300)
    for node in sorted(platform.cluster.kubelets):
        if not platform.cluster.node_is_alive(node):
            platform.cluster.recover_node(node)
    env.run(until=env.now + 300)
    assert platform.cluster.allocated_gpus() == 0
    check_no_overallocation(platform)
