"""Tests for the CLI front-end."""

import json

import pytest

from repro.cli import build_parser, load_manifest, main


def write_manifest(tmp_path, **overrides):
    manifest = {
        "name": "cli-test", "user": "tester",
        "framework": "tensorflow", "model": "resnet50",
        "learners": 1, "gpus_per_learner": 1, "gpu_type": "K80",
        "iterations": 200,
    }
    manifest.update(overrides)
    path = tmp_path / "job.json"
    path.write_text(json.dumps(manifest))
    return str(path)


def test_load_manifest_roundtrip(tmp_path):
    path = write_manifest(tmp_path, learners=2)
    manifest = load_manifest(path)
    assert manifest.name == "cli-test"
    assert manifest.learners == 2


def test_load_manifest_rejects_unknown_fields(tmp_path):
    from repro.errors import ReproError
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"name": "x", "user": "u",
                                "frobnicate": True}))
    with pytest.raises(ReproError):
        load_manifest(path)


def test_validate_command_ok(tmp_path, capsys):
    path = write_manifest(tmp_path)
    assert main(["validate", "--manifest", path]) == 0
    out = capsys.readouterr().out
    assert "manifest OK" in out


def test_validate_command_flags_without_manifest(capsys):
    assert main(["validate", "--name", "flagjob", "--gpus", "2"]) == 0
    assert "2 K80 GPU" in capsys.readouterr().out


def test_validate_command_bad_manifest(tmp_path, capsys):
    path = write_manifest(tmp_path, iterations=0)
    assert main(["validate", "--manifest", path]) == 2
    assert "error" in capsys.readouterr().err


def test_show_tshirt_sizes(capsys):
    assert main(["show-tshirt-sizes"]) == 0
    out = capsys.readouterr().out
    assert "1xV100" in out and "26" in out


def test_demo_runs_job_to_completion(tmp_path, capsys):
    path = write_manifest(tmp_path, iterations=150)
    code = main(["demo", "--manifest", path, "--nodes", "2", "--logs"])
    out = capsys.readouterr().out
    assert code == 0
    assert "final status: COMPLETED" in out
    assert "PROCESSING" in out


def test_missing_manifest_file_is_reported(capsys):
    assert main(["validate", "--manifest", "/nope/missing.json"]) == 2
    assert "error" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
