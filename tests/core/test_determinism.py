"""Determinism regression: identical seeds produce identical histories.

The entire point of the discrete-event substrate is exact replayability —
every benchmark number in EXPERIMENTS.md must reproduce bit-for-bit.
"""


from repro.core import PlatformConfig, statuses as st

from tests.core.conftest import make_manifest, make_platform, submit


def run_scenario(seed):
    config = PlatformConfig(node_detection_latency_s=10.0,
                            pod_eviction_timeout_s=10.0)
    env, platform = make_platform(seed=seed, nodes=3, config=config)
    job_ids = []
    for i in range(3):
        manifest = make_manifest(name=f"det-{i}", learners=1 + i % 2,
                                 iterations=1200, ckpt=400)
        job_ids.append(submit(env, platform, manifest))
        env.run(until=env.now + 10)
    # Inject the same faults at the same times.
    env.run(until=200)
    pods = platform.learner_pods(job_ids[0])
    if pods:
        platform.kill_pod_containers(pods[0].name)
    env.run(until=400)
    platform.cluster.fail_node(sorted(platform.cluster.kubelets)[0])
    env.run(until=500)
    platform.cluster.recover_node(sorted(platform.cluster.kubelets)[0])
    for job_id in job_ids:
        env.run_until_complete(platform.wait_for_terminal(job_id),
                               limit=1e7)
    env.run(until=env.now + 60)
    # Job ids come from a global counter that advances across runs;
    # compare histories positionally (submission order) instead.
    return [
        (platform.job(job_id).status.timeline(),
         [s.iterations_done
          for s in platform.job(job_id).learner_states],
         [s.restarts
          for s in platform.job(job_id).learner_states])
        for job_id in job_ids
    ]


def test_same_seed_identical_histories():
    assert run_scenario(7) == run_scenario(7)


def test_different_seed_differs_somewhere():
    a = run_scenario(7)
    b = run_scenario(8)
    # Timelines contain timestamps shaped by seeded latencies; at least
    # one must differ.
    assert a != b
