"""Fault-tolerance integration tests (Sections 3.3 and 3.8).

These exercise the claims the paper makes about FfDL's robustness:
atomic deployment with Guardian rollback, checkpoint-based learner
recovery, stateful-set rescheduling after node failure, and status
updates that survive component crashes.
"""


from repro.core import PlatformConfig, statuses as st

from tests.core.conftest import (
    make_manifest,
    make_platform,
    run_to_terminal,
    submit,
)


def wait_phase(env, platform, job_id, phase, deadline=2000):
    while env.now < deadline:
        env.run(until=env.now + 5)
        if platform.job(job_id).status.current == phase:
            return True
    return False


def test_learner_crash_resumes_from_checkpoint():
    env, platform = make_platform()
    manifest = make_manifest(iterations=2000, ckpt=500)
    job_id = submit(env, platform, manifest)
    assert wait_phase(env, platform, job_id, st.PROCESSING)
    # Let it get past the first checkpoint, then crash the learner.
    job = platform.job(job_id)
    while job.learner_states[0].checkpoints_written < 1:
        env.run(until=env.now + 10)
    pods = platform.learner_pods(job_id)
    platform.kill_pod_containers(pods[0].name)
    status = run_to_terminal(env, platform, job_id)
    assert status == st.COMPLETED
    state = job.learner_states[0]
    assert state.checkpoints_loaded >= 1
    assert state.iterations_done == 2000


def test_learner_crash_without_checkpoints_restarts_from_zero():
    env, platform = make_platform()
    manifest = make_manifest(iterations=1000, ckpt=0)
    job_id = submit(env, platform, manifest)
    assert wait_phase(env, platform, job_id, st.PROCESSING)
    job = platform.job(job_id)
    while job.learner_states[0].iterations_done < 300:
        env.run(until=env.now + 10)
    pods = platform.learner_pods(job_id)
    platform.kill_pod_containers(pods[0].name)
    env.run(until=env.now + 30)
    status = run_to_terminal(env, platform, job_id)
    assert status == st.COMPLETED
    assert job.learner_states[0].checkpoints_loaded == 0


def test_node_failure_reschedules_learner_elsewhere():
    config = PlatformConfig(node_detection_latency_s=5.0,
                            pod_eviction_timeout_s=5.0)
    env, platform = make_platform(nodes=2, config=config)
    manifest = make_manifest(iterations=3000, ckpt=500)
    job_id = submit(env, platform, manifest)
    assert wait_phase(env, platform, job_id, st.PROCESSING)
    job = platform.job(job_id)
    while job.learner_states[0].checkpoints_written < 1:
        env.run(until=env.now + 10)
    pod = platform.learner_pods(job_id)[0]
    failed_node = pod.node_name
    platform.cluster.fail_node(failed_node)
    status = run_to_terminal(env, platform, job_id, limit=1e6)
    assert status == st.COMPLETED
    # The replacement ran on the surviving node.
    assert job.learner_states[0].checkpoints_loaded >= 1


def test_guardian_crash_mid_deploy_rolls_back_and_retries():
    env, platform = make_platform()
    platform.crash_guardian_after_step = 2  # crash after netpol creation
    job_id = submit(env, platform, make_manifest(iterations=100))
    job = platform.job(job_id)
    while job.guardian_attempts < 2 and env.now < 100:
        env.run(until=env.now + 0.5)
    platform.crash_guardian_after_step = 0  # next attempt succeeds
    status = run_to_terminal(env, platform, job_id, limit=1e6)
    assert status == st.COMPLETED
    job = platform.job(job_id)
    assert job.guardian_attempts >= 2
    # No zombie objects: exactly zero leftovers after completion.
    env.run(until=env.now + 30)
    api = platform.cluster.api
    assert not api.exists("networkpolicies", job.netpol_name)
    assert not api.exists("pvcs", job.pvc_name)


def test_guardian_persistent_crash_marks_job_failed():
    env, platform = make_platform()
    platform.crash_guardian_after_step = 1  # always crash
    job_id = submit(env, platform, make_manifest(iterations=100))
    status = run_to_terminal(env, platform, job_id, limit=1e6)
    assert status == st.FAILED
    job = platform.job(job_id)
    assert job.guardian_attempts > platform.config.guardian_backoff_limit
    doc = platform.mongo.collection("jobs").find_one({"_id": job_id})
    assert doc["status"] == st.FAILED


def test_guardian_crash_after_deploy_does_not_roll_back():
    """A restarted Guardian must monitor a healthy job, not redeploy it."""
    env, platform = make_platform()
    job_id = submit(env, platform,
                    make_manifest(iterations=3000, ckpt=1000))
    assert wait_phase(env, platform, job_id, st.PROCESSING)
    job = platform.job(job_id)
    progressed = job.learner_states[0].iterations_done
    guardian = platform.guardian_pod(job_id)
    assert guardian is not None
    platform.kill_pod_containers(guardian.name)
    status = run_to_terminal(env, platform, job_id, limit=1e6)
    assert status == st.COMPLETED
    # Training was not restarted: learners never re-entered DOWNLOADING
    # with progress reset.
    assert job.learner_states[0].checkpoints_loaded == 0
    assert job.learner_states[0].iterations_done == 3000


def test_guardian_crash_after_learner_create_rolls_back_and_redeploys():
    """Crash after step 4 (StatefulSet created, milestone NOT durable):
    the restarted Guardian must tear the gang down and redeploy."""
    env, platform = make_platform()
    api = platform.cluster.api
    gang_creates = []
    api.subscribe("statefulsets",
                  lambda verb, obj: verb == "ADDED"
                  and gang_creates.append(obj.name))
    platform.crash_guardian_after_step = 4
    job_id = submit(env, platform, make_manifest(iterations=100))
    job = platform.job(job_id)
    while job.guardian_attempts < 2 and env.now < 200:
        env.run(until=env.now + 0.5)
    assert job.guardian_attempts >= 2
    platform.crash_guardian_after_step = 0  # next attempt succeeds
    status = run_to_terminal(env, platform, job_id, limit=1e6)
    assert status == st.COMPLETED
    # The milestone was never written before the crash, so every restart
    # rolled the gang back and created a fresh StatefulSet.
    assert gang_creates.count(job.statefulset_name) >= 2
    # No zombie objects from the rolled-back attempts.
    env.run(until=env.now + 30)
    assert not api.exists("statefulsets", job.statefulset_name)
    assert not api.exists("networkpolicies", job.netpol_name)
    assert not api.exists("pvcs", job.pvc_name)


def test_guardian_crash_after_milestone_monitors_without_redeploy():
    """Crash after step 5 (milestone durable): the restarted Guardian
    must go straight to monitoring — never roll back or double-deploy
    the healthy gang."""
    env, platform = make_platform()
    api = platform.cluster.api
    gang_creates = []
    api.subscribe("statefulsets",
                  lambda verb, obj: verb == "ADDED"
                  and gang_creates.append(obj.name))
    platform.crash_guardian_after_step = 5
    job_id = submit(env, platform,
                    make_manifest(iterations=3000, ckpt=1000))
    status = run_to_terminal(env, platform, job_id, limit=1e6)
    assert status == st.COMPLETED
    job = platform.job(job_id)
    # Exactly one crash: the restart reads the milestone, skips _deploy
    # (so the step-5 hook never fires again), and monitors.
    assert job.guardian_attempts == 2
    assert gang_creates.count(job.statefulset_name) == 1
    # Training was never interrupted by a rollback: no checkpoint
    # reloads, full iteration count on the original learners.
    assert job.learner_states[0].checkpoints_loaded == 0
    assert job.learner_states[0].iterations_done == 3000


def test_helper_crash_recovers_and_statuses_keep_flowing():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(iterations=2500))
    assert wait_phase(env, platform, job_id, st.PROCESSING)
    helper = platform.helper_pod(job_id)
    platform.kill_pod_containers(helper.name)
    status = run_to_terminal(env, platform, job_id, limit=1e6)
    # Despite the helper dying mid-job, the restarted controller picks the
    # exit files up from NFS and the job completes normally.
    assert status == st.COMPLETED


def test_failing_user_code_marks_job_failed():
    env, platform = make_platform()
    manifest = make_manifest(iterations=100)
    manifest.dataset_objects = 0  # learner treats empty dataset as error
    # Simulate user-code failure by making iterations impossible: patch a
    # learner that raises.  Easiest honest path: dataset objects exist but
    # the learner's training loop raises -> exit code 1 -> FAILED.
    env2, platform2 = make_platform()
    job_id = submit(env2, platform2, make_manifest(iterations=100))
    job = platform2.job(job_id)

    def bomb():
        raise RuntimeError("bad user code")

    job.learner_states  # (accessor only; failure injected via halt hook)
    # Inject: make the halt hook raise, which the learner surfaces as a
    # training error -> exit "1".
    env2.run(until=env2.now + 20)
    status = None
    # Simpler deterministic route: directly write a failing exit file.
    if job.volume is not None:
        job.volume.write("learners/0/exit", "1")
        status = run_to_terminal(env2, platform2, job_id, limit=1e6)
    assert status == st.FAILED


def test_api_microservice_outage_delays_but_serves_requests():
    env, platform = make_platform()
    # Take down both API replicas.
    platform.crash_api_replica()
    platform.crash_api_replica()
    assert not platform.api_service.available
    submit_event = platform.submit_job(make_manifest(iterations=100))
    env.run(until=env.now + 1)
    assert not submit_event.triggered  # blocked on availability
    job_id = env.run_until_complete(submit_event, limit=env.now + 100)
    assert job_id.startswith("job-")
    # Recovery happened within the configured 3-5s window.
    assert platform.api_service.recovery_log


def test_lcm_crash_does_not_lose_submitted_jobs():
    env, platform = make_platform()
    platform.crash_lcm_replica()
    platform.crash_lcm_replica()
    submit_event = platform.submit_job(make_manifest(iterations=100))
    job_id = env.run_until_complete(submit_event, limit=env.now + 100)
    status = run_to_terminal(env, platform, job_id, limit=1e6)
    assert status == st.COMPLETED


def test_nfs_provisioning_failures_exhaust_guardian_then_fail_job():
    env, platform = make_platform()
    # Make every provisioning attempt fail.
    platform.nfs.overload_threshold = 0
    platform.nfs.overload_failure_probability = 1.0
    job_id = submit(env, platform, make_manifest(iterations=100))
    status = run_to_terminal(env, platform, job_id, limit=1e6)
    assert status == st.FAILED
    assert platform.nfs.failures >= 1
