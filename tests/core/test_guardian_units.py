"""Unit tests for the Guardian's status aggregation logic."""


from repro.core import statuses as st
from repro.core.guardian import _aggregate
from repro.core.helper import learner_exit_key, learner_status_key
from repro.core.job import TrainingJob

from tests.core.conftest import make_manifest, make_platform


def setup(learners=2):
    env, platform = make_platform()
    manifest = make_manifest(learners=learners)
    job = TrainingJob("job-agg", manifest, 0.0)
    return platform, job


def put_status(platform, job, index, status):
    platform.etcd_store().put(learner_status_key(job.job_id, index),
                              status)


def put_exit(platform, job, index, code):
    platform.etcd_store().put(learner_exit_key(job.job_id, index), code)


def test_no_keys_yields_none():
    platform, job = setup()
    assert _aggregate(platform, job) is None


def test_partial_statuses_report_downloading():
    platform, job = setup(learners=2)
    put_status(platform, job, 0, st.PROCESSING)
    # Learner 1 has not reported yet: the job is only as far along as its
    # slowest member.
    assert _aggregate(platform, job) == st.DOWNLOADING


def test_slowest_learner_wins():
    platform, job = setup(learners=2)
    put_status(platform, job, 0, st.STORING)
    put_status(platform, job, 1, st.PROCESSING)
    assert _aggregate(platform, job) == st.PROCESSING


def test_all_processing():
    platform, job = setup(learners=2)
    for i in range(2):
        put_status(platform, job, i, st.PROCESSING)
    assert _aggregate(platform, job) == st.PROCESSING


def test_any_nonzero_exit_fails_job():
    platform, job = setup(learners=2)
    put_status(platform, job, 0, st.PROCESSING)
    put_exit(platform, job, 1, "1")
    assert _aggregate(platform, job) == st.FAILED


def test_all_zero_exits_complete_job():
    platform, job = setup(learners=2)
    for i in range(2):
        put_exit(platform, job, i, "0")
    assert _aggregate(platform, job) == st.COMPLETED


def test_partial_exits_not_terminal():
    platform, job = setup(learners=2)
    put_status(platform, job, 0, st.STORING)
    put_status(platform, job, 1, st.STORING)
    put_exit(platform, job, 0, "0")
    assert _aggregate(platform, job) == st.STORING


def test_halted_learners_aggregate_to_halted():
    platform, job = setup(learners=2)
    put_exit(platform, job, 0, "halted")
    put_exit(platform, job, 1, "halted")
    assert _aggregate(platform, job) == st.HALTED


def test_mixed_halted_and_completed_is_halted():
    platform, job = setup(learners=2)
    put_exit(platform, job, 0, "0")
    put_exit(platform, job, 1, "halted")
    assert _aggregate(platform, job) == st.HALTED
