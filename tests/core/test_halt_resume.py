"""Tests for user-driven HALT / RESUME (hyperparameter-tuning workflow)."""

import pytest

from repro.core import statuses as st

from tests.core.conftest import (
    make_manifest,
    make_platform,
    run_to_terminal,
    submit,
)


def start_processing(env, platform, iterations=5000, ckpt=500):
    job_id = submit(env, platform,
                    make_manifest(iterations=iterations, ckpt=ckpt))
    job = platform.job(job_id)
    while job.status.current != st.PROCESSING and env.now < 2000:
        env.run(until=env.now + 5)
    assert job.status.current == st.PROCESSING
    return job_id, job


def test_halt_stops_job_with_halted_status():
    env, platform = make_platform()
    job_id, job = start_processing(env, platform)
    env.run_until_complete(platform.halt_job(job_id), limit=env.now + 100)
    status = run_to_terminal(env, platform, job_id, limit=1e6)
    assert status == st.HALTED
    assert job.learner_states[0].halted


def test_halt_releases_cluster_resources():
    env, platform = make_platform()
    job_id, _job = start_processing(env, platform)
    env.run_until_complete(platform.halt_job(job_id), limit=env.now + 100)
    run_to_terminal(env, platform, job_id, limit=1e6)
    env.run(until=env.now + 30)
    assert platform.cluster.allocated_gpus() == 0
    assert platform.learner_pods(job_id) == []


def test_halt_checkpoints_progress():
    env, platform = make_platform()
    job_id, job = start_processing(env, platform)
    while job.learner_states[0].iterations_done < 600:
        env.run(until=env.now + 10)
    env.run_until_complete(platform.halt_job(job_id), limit=env.now + 100)
    run_to_terminal(env, platform, job_id, limit=1e6)
    assert job.learner_states[0].checkpoints_written >= 1


def test_resume_continues_from_checkpoint():
    env, platform = make_platform()
    job_id, job = start_processing(env, platform, iterations=3000,
                                   ckpt=500)
    while job.learner_states[0].iterations_done < 800:
        env.run(until=env.now + 10)
    env.run_until_complete(platform.halt_job(job_id), limit=env.now + 100)
    run_to_terminal(env, platform, job_id, limit=1e6)
    halted_progress = job.learner_states[0].iterations_done
    assert halted_progress >= 800
    env.run_until_complete(platform.resume_job(job_id),
                           limit=env.now + 100)
    status = run_to_terminal(env, platform, job_id, limit=1e7)
    assert status == st.COMPLETED
    state = job.learner_states[0]
    assert state.checkpoints_loaded >= 1
    assert state.iterations_done == 3000
    # Status history shows the full cycle.
    names = [s for s, _t in job.status.timeline()]
    assert st.HALTED in names
    assert st.RESUMED in names


def test_resume_of_non_halted_job_rejected():
    from repro.errors import JobNotFoundError
    env, platform = make_platform()
    job_id, _job = start_processing(env, platform)
    with pytest.raises(JobNotFoundError):
        env.run_until_complete(platform.resume_job(job_id),
                               limit=env.now + 100)


def test_preemption_halts_and_resume_recovers():
    env, platform = make_platform()
    job_id, job = start_processing(env, platform, iterations=2000,
                                   ckpt=500)
    while job.learner_states[0].iterations_done < 600:
        env.run(until=env.now + 10)
    platform.preempt_job(job_id, reason="free user under heavy load")
    env.run(until=env.now + 30)
    assert job.status.current == st.HALTED
    assert job.preempted
    assert platform.cluster.allocated_gpus() == 0
    env.run_until_complete(platform.resume_job(job_id),
                           limit=env.now + 100)
    status = run_to_terminal(env, platform, job_id, limit=1e7)
    assert status == st.COMPLETED
