"""Integration tests: the full FfDL job pipeline."""

import pytest

from repro.core import statuses as st

from tests.core.conftest import (
    make_manifest,
    make_platform,
    run_to_terminal,
    submit,
)


def test_single_learner_job_completes():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(iterations=200))
    status = run_to_terminal(env, platform, job_id)
    assert status == st.COMPLETED
    job = platform.job(job_id)
    assert job.learner_states[0].iterations_done == 200


def test_status_pipeline_order_and_timestamps():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest())
    run_to_terminal(env, platform, job_id)
    job = platform.job(job_id)
    timeline = job.status.timeline()
    names = [s for s, _t in timeline]
    assert names[0] == st.QUEUED
    assert names[1] == st.DEPLOYING
    assert st.DOWNLOADING in names
    assert st.PROCESSING in names
    assert names[-1] == st.COMPLETED
    times = [t for _s, t in timeline]
    assert times == sorted(times)


def test_metadata_durable_in_mongo_before_ack():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest())
    # Immediately after the submit event resolves, MongoDB has the record.
    doc = platform.mongo.collection("jobs").find_one({"_id": job_id})
    assert doc is not None
    assert doc["status"] == st.QUEUED


def test_mongo_status_reaches_completed():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest())
    run_to_terminal(env, platform, job_id)
    doc = platform.mongo.collection("jobs").find_one({"_id": job_id})
    assert doc["status"] == st.COMPLETED
    statuses = [h["status"] for h in doc["status_history"]]
    assert statuses[0] == st.QUEUED
    assert statuses[-1] == st.COMPLETED


def test_distributed_job_completes():
    env, platform = make_platform()
    job_id = submit(env, platform,
                    make_manifest(learners=4, gpus=2, iterations=300))
    status = run_to_terminal(env, platform, job_id)
    assert status == st.COMPLETED
    job = platform.job(job_id)
    assert all(s.iterations_done == 300 for s in job.learner_states)


def test_garbage_collection_after_completion():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(learners=2))
    run_to_terminal(env, platform, job_id)
    env.run(until=env.now + 30)
    api = platform.cluster.api
    job = platform.job(job_id)
    assert not api.exists("statefulsets", job.statefulset_name)
    assert not api.exists("deployments", job.helper_name)
    assert not api.exists("networkpolicies", job.netpol_name)
    assert not api.exists("pvcs", job.pvc_name)
    assert platform.learner_pods(job_id) == []
    # etcd job keys cleaned up.
    assert platform.etcd_store().range(f"/jobs/{job_id}/") == []
    # All GPUs back.
    assert platform.cluster.allocated_gpus() == 0


def test_results_stored_in_bucket():
    env, platform = make_platform()
    manifest = make_manifest(learners=2)
    job_id = submit(env, platform, manifest)
    run_to_terminal(env, platform, job_id)
    results = platform.oss.bucket(manifest.result_bucket)
    models = results.list(f"models/{job_id}/")
    assert len(models) == 2


def test_training_logs_streamed_to_index():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest())
    run_to_terminal(env, platform, job_id)
    logs = platform.stream_logs(job_id)
    assert logs
    lines = [entry.line for entry in logs]
    assert any(st.PROCESSING in line for line in lines)


def test_network_policy_isolates_jobs():
    env, platform = make_platform()
    id_a = submit(env, platform, make_manifest(name="a", iterations=5000))
    id_b = submit(env, platform, make_manifest(name="b", user="bob",
                                               iterations=5000))
    env.run(until=env.now + 60)
    policies = platform.cluster.api.list_network_policies()
    assert len(policies) == 2
    pods_a = platform.learner_pods(id_a)
    pods_b = platform.learner_pods(id_b)
    assert pods_a and pods_b
    policy_a = next(p for p in policies
                    if p.pod_selector == {"job": id_a})
    # Same job may talk; the other job's learner may not.
    assert policy_a.allows(pods_a[0], pods_a[0])
    assert not policy_a.allows(pods_b[0], pods_a[0])


def test_job_queues_until_gpus_free():
    env, platform = make_platform(nodes=1, gpus_per_node=4)
    first = submit(env, platform,
                   make_manifest(name="first", learners=1, gpus=4,
                                 iterations=400))
    env.run(until=env.now + 40)
    second = submit(env, platform,
                    make_manifest(name="second", learners=1, gpus=4,
                                  iterations=100))
    env.run(until=env.now + 30)
    assert platform.job(second).status.current in (st.QUEUED, st.DEPLOYING)
    assert run_to_terminal(env, platform, first) == st.COMPLETED
    assert run_to_terminal(env, platform, second) == st.COMPLETED
    # The second job queued behind the first.
    assert platform.job(second).status.time_of(st.DOWNLOADING) > \
        platform.job(first).status.time_of(st.COMPLETED) - 30


def test_invalid_manifest_fails_submit():
    from repro.errors import ValidationError
    env, platform = make_platform()
    manifest = make_manifest(iterations=0)
    with pytest.raises(ValidationError):
        submit(env, platform, manifest)


def test_unknown_job_raises():
    from repro.errors import JobNotFoundError
    _env, platform = make_platform()
    with pytest.raises(JobNotFoundError):
        platform.job("nope")


def test_job_status_api_reads_mongo():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest())
    doc = env.run_until_complete(platform.job_status(job_id),
                                 limit=env.now + 100)
    assert doc["_id"] == job_id


def test_caffe_job_runs():
    from repro.core import JobManifest
    env, platform = make_platform()
    manifest = JobManifest(name="caffe-job", user="alice",
                           framework="caffe", model="vgg16",
                           learners=1, gpus_per_learner=1, gpu_type="K80",
                           iterations=100)
    job_id = submit(env, platform, manifest)
    assert run_to_terminal(env, platform, job_id) == st.COMPLETED
