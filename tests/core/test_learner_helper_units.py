"""Unit tests for learner checkpoint mechanics and the helper containers."""


from repro.core.helper import (
    ControllerState,
    make_controller_workload,
    make_log_collector_workload,
)
from repro.core.learner import (
    LearnerContext, checkpoint_key, find_latest_checkpoint,
)
from repro.core.logging_service import LogIndex
from repro.core.manifest import JobManifest
from repro.docker import Container, Image
from repro.etcd import EtcdClient, EtcdStore
from repro.nfs import NFSVolume
from repro.objectstore import BucketMount, ObjectStorageService
from repro.sim import Environment


def make_ctx(env, job_id="job-x"):
    oss = ObjectStorageService(env, bandwidth_bps=1e9,
                               request_latency_s=0.0)
    oss.create_bucket("results")
    manifest = JobManifest(name="unit", user="u",
                           framework="tensorflow", model="resnet50")
    return LearnerContext(
        env=env, manifest=manifest, job_id=job_id,
        volume=NFSVolume("v"),
        data_mount=BucketMount(env, oss, "results"),
        result_mount=BucketMount(env, oss, "results")), oss


def test_checkpoint_key_sorts_numerically():
    keys = [checkpoint_key("j", 0, i) for i in (5, 50, 500, 5000)]
    assert keys == sorted(keys)


def test_find_latest_checkpoint_none_when_empty():
    env = Environment()
    ctx, _oss = make_ctx(env)
    assert find_latest_checkpoint(ctx, 0) is None


def test_find_latest_checkpoint_picks_newest():
    env = Environment()
    ctx, oss = make_ctx(env)
    bucket = oss.bucket("results")
    for iteration in (500, 1500, 1000):
        bucket.put(checkpoint_key("job-x", 0, iteration), 1e6)
    bucket.put(checkpoint_key("job-x", 1, 9000), 1e6)  # other learner
    assert find_latest_checkpoint(ctx, 0) == 1500
    assert find_latest_checkpoint(ctx, 1) == 9000


def test_controller_relays_statuses_to_etcd():
    env = Environment()
    volume = NFSVolume("shared")
    etcd = EtcdClient(env, EtcdStore(env))
    state = ControllerState()
    manifest = JobManifest(name="j", user="u", framework="tensorflow",
                           model="resnet50", learners=2)
    workload = make_controller_workload(env, manifest, "job-1", volume,
                                        etcd, state)
    container = Container(env, Image("helper"), "helper/controller",
                          workload)
    container.start()
    env.run(until=1.0)

    volume.write("learners/0/status", "DOWNLOADING")
    volume.write("learners/1/status", "DOWNLOADING")
    env.run(until=5.0)
    store = etcd.backend
    assert store.get("/jobs/job-1/learners/0/status").value == \
        "DOWNLOADING"
    assert state.statuses == {0: "DOWNLOADING", 1: "DOWNLOADING"}

    volume.write("learners/0/exit", "0")
    env.run(until=10.0)
    assert store.get("/jobs/job-1/learners/0/exit").value == "0"
    assert state.exits == {0: "0"}


def test_controller_keys_carry_lease():
    env = Environment()
    volume = NFSVolume("shared")
    store = EtcdStore(env)
    etcd = EtcdClient(env, store)
    state = ControllerState()
    manifest = JobManifest(name="j", user="u", framework="tensorflow",
                           model="resnet50")
    container = Container(env, Image("helper"), "h/controller",
                          make_controller_workload(env, manifest, "job-2",
                                                   volume, etcd, state))
    container.start()
    env.run(until=1.0)
    volume.write("learners/0/status", "PROCESSING")
    env.run(until=5.0)
    kv = store.get("/jobs/job-2/learners/0/status")
    assert kv.lease_id == state.lease_id
    # Kill the controller: the lease stops being refreshed and the stale
    # key self-erases after the TTL.
    container.kill()
    env.run(until=200.0)
    assert store.get("/jobs/job-2/learners/0/status") is None


def test_controller_picks_up_preexisting_files():
    env = Environment()
    volume = NFSVolume("shared")
    volume.write("learners/0/status", "PROCESSING")  # before start
    etcd = EtcdClient(env, EtcdStore(env))
    state = ControllerState()
    manifest = JobManifest(name="j", user="u", framework="tensorflow",
                           model="resnet50")
    container = Container(env, Image("helper"), "h/controller",
                          make_controller_workload(env, manifest, "job-3",
                                                   volume, etcd, state))
    container.start()
    env.run(until=5.0)
    assert state.statuses == {0: "PROCESSING"}


def test_log_collector_ships_incrementally():
    env = Environment()
    volume = NFSVolume("shared")
    index = LogIndex()
    container = Container(env, Image("helper"), "h/log-collector",
                          make_log_collector_workload(env, "job-4",
                                                      volume, index))
    container.start()
    env.run(until=0.5)
    volume.append("learners/0/log", "line-1\n")
    env.run(until=3.0)
    volume.append("learners/0/log", "line-2\nline-3\n")
    env.run(until=6.0)
    lines = [e.line for e in index.logs_for("job-4")]
    assert lines == ["line-1", "line-2", "line-3"]  # no duplicates


def test_log_collector_ignores_non_log_files():
    env = Environment()
    volume = NFSVolume("shared")
    index = LogIndex()
    container = Container(env, Image("helper"), "h/log-collector",
                          make_log_collector_workload(env, "job-5",
                                                      volume, index))
    container.start()
    env.run(until=0.5)
    volume.write("learners/0/status", "PROCESSING")
    env.run(until=3.0)
    assert index.logs_for("job-5") == []
