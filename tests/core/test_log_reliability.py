"""Log-streaming reliability (a Section 2 requirement).

"Reliable streaming of logs from the job, irrespective of the stage it is
in, even if it crashes/fails.  This is key for users to debug their jobs."
"""


from repro.core import statuses as st

from tests.core.conftest import (
    make_manifest,
    make_platform,
    run_to_terminal,
    submit,
)


def test_logs_survive_learner_crash():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(iterations=2500,
                                                 ckpt=500))
    job = platform.job(job_id)
    while job.status.current != st.PROCESSING and env.now < 2000:
        env.run(until=env.now + 5)
    env.run(until=env.now + 30)
    lines_before = len(platform.stream_logs(job_id))
    assert lines_before > 0
    platform.kill_pod_containers(platform.learner_pods(job_id)[0].name)
    run_to_terminal(env, platform, job_id, limit=1e7)
    logs = platform.stream_logs(job_id)
    # Nothing already shipped is lost, and post-crash lines keep flowing.
    assert len(logs) > lines_before
    lines = [entry.line for entry in logs]
    # The restart is visible in the stream (a second DOWNLOADING report).
    assert sum(1 for line in lines if "DOWNLOADING" in line) >= 2


def test_logs_available_for_failed_jobs():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(iterations=2500))
    job = platform.job(job_id)
    while job.status.current != st.PROCESSING and env.now < 2000:
        env.run(until=env.now + 5)
    env.run(until=env.now + 10)
    # Force user-code failure.
    job.volume.write("learners/0/exit", "1")
    status = run_to_terminal(env, platform, job_id, limit=1e7)
    assert status == st.FAILED
    # Logs collected up to the failure remain queryable.
    assert platform.stream_logs(job_id)


def test_logs_survive_helper_crash():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(iterations=3000))
    job = platform.job(job_id)
    while job.status.current != st.PROCESSING and env.now < 2000:
        env.run(until=env.now + 5)
    env.run(until=env.now + 30)
    before = len(platform.stream_logs(job_id))
    helper = platform.helper_pod(job_id)
    platform.kill_pod_containers(helper.name)
    run_to_terminal(env, platform, job_id, limit=1e7)
    # The restarted log-collector re-reads the NFS log files; everything
    # written after the crash still reaches the index.
    assert len(platform.stream_logs(job_id)) >= before


def test_log_entries_ordered_and_attributed():
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(learners=2,
                                                 iterations=500))
    run_to_terminal(env, platform, job_id, limit=1e7)
    logs = platform.stream_logs(job_id)
    times = [entry.time for entry in logs]
    assert times == sorted(times)
    sources = {entry.source for entry in logs}
    assert "learners/0/log" in sources and "learners/1/log" in sources
