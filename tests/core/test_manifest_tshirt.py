"""Tests for manifest validation and t-shirt sizing."""

import pytest

from repro.core import TSHIRT_SIZES, derive_cpus, recommend
from repro.core.tshirt import memory_gb
from repro.errors import ValidationError

from tests.core.conftest import make_manifest


def test_valid_manifest_passes():
    make_manifest().validate()


@pytest.mark.parametrize("field,value", [
    ("name", ""),
    ("user", ""),
    ("framework", "mxnet"),
    ("model", "alexnet"),
    ("learners", 0),
    ("gpus_per_learner", -1),
    ("gpu_type", "A100"),
    ("iterations", 0),
    ("checkpoint_interval_iterations", -5),
])
def test_invalid_manifests_rejected(field, value):
    manifest = make_manifest()
    setattr(manifest, field, value)
    with pytest.raises(ValidationError):
        manifest.validate()


def test_unsized_gpu_config_requires_explicit_cpus():
    manifest = make_manifest(gpus=4, gpu_type="V100")  # no 4xV100 t-shirt
    with pytest.raises(ValidationError):
        manifest.validate()
    manifest.cpus_per_learner = 52
    manifest.validate()


def test_total_gpus():
    assert make_manifest(learners=4, gpus=2).total_gpus == 8


def test_effective_resources_default_to_tshirt():
    manifest = make_manifest(gpus=2, gpu_type="P100")
    assert manifest.effective_cpus() == 16
    assert manifest.effective_memory_gb() == 48


def test_effective_resources_explicit_override():
    manifest = make_manifest(cpus_per_learner=3.0,
                             memory_gb_per_learner=12.0)
    assert manifest.effective_cpus() == 3.0
    assert manifest.effective_memory_gb() == 12.0


def test_cpu_only_job_defaults():
    manifest = make_manifest(gpus=0)
    manifest.gpus_per_learner = 0
    assert manifest.effective_cpus() == 4.0


def test_table5_values():
    """Table 5 of the paper, verbatim."""
    expect = {
        ("K80", 1): (4, 24), ("K80", 2): (8, 48), ("K80", 4): (16, 96),
        ("P100", 1): (8, 24), ("P100", 2): (16, 48),
        ("V100", 1): (26, 24), ("V100", 2): (42, 48),
    }
    for (gpu, count), (cpus, mem) in expect.items():
        size = recommend(gpu, count)
        assert (size.cpus, size.memory_gb) == (cpus, mem)


def test_recommend_unknown_raises():
    with pytest.raises(ValidationError):
        recommend("K80", 8)


def test_derived_cpus_increase_with_gpu_speed():
    k80 = derive_cpus("K80", 1)
    p100 = derive_cpus("P100", 1)
    v100 = derive_cpus("V100", 1)
    assert k80 <= p100 <= v100


def test_derived_cpus_scale_with_gpu_count():
    assert derive_cpus("K80", 4) == 4 * derive_cpus("K80", 1)


def test_derived_cpus_roughly_match_table5():
    """The derivation should land near the published sizes (within 2x)."""
    for (gpu, count), size in TSHIRT_SIZES.items():
        derived = derive_cpus(gpu, count)
        assert size.cpus / 2 <= derived <= size.cpus * 2, (gpu, count)


def test_memory_recommendation():
    assert memory_gb(1) == 24
    assert memory_gb(2) == 48
