"""Tests for the cluster utilization sampler."""


from tests.core.conftest import make_manifest, make_platform, submit


def test_sampler_records_utilization_series():
    env, platform = make_platform(nodes=1, gpus_per_node=4)
    platform.start_utilization_sampler(interval_s=30.0)
    job_id = submit(env, platform,
                    make_manifest(learners=1, gpus=4, iterations=2000))
    env.run(until=600)
    series = platform.metrics.series("cluster_gpu_utilization")
    assert len(series) >= 10
    # Utilization observed both idle (before deploy) and fully allocated.
    values = [p.value for p in series]
    assert min(values) == 0.0
    assert max(values) == 1.0
    times = [p.time for p in series]
    assert times == sorted(times)


def test_sampler_can_be_stopped():
    env, platform = make_platform()
    proc = platform.start_utilization_sampler(interval_s=10.0)
    env.run(until=50)
    count = len(platform.metrics.series("cluster_gpu_utilization"))
    proc.interrupt()
    env.run(until=200)
    assert len(platform.metrics.series("cluster_gpu_utilization")) == count
