"""Tests for parameter-server jobs (Sections 3.1 and 3.8)."""

import pytest

from repro.core import statuses as st

from tests.core.conftest import (
    make_manifest,
    make_platform,
    run_to_terminal,
    submit,
)


def ps_manifest(**kwargs):
    kwargs.setdefault("learners", 2)
    kwargs.setdefault("iterations", 2000)
    manifest = make_manifest(**kwargs)
    manifest.parameter_servers = 1
    return manifest


def test_ps_pods_deploy_with_the_job():
    env, platform = make_platform()
    job_id = submit(env, platform, ps_manifest(iterations=4000))
    env.run(until=env.now + 120)
    pods = [p for p in platform.cluster.api.list_pods()
            if p.meta.labels.get("job") == job_id]
    types = sorted(p.meta.labels.get("type") for p in pods)
    assert types.count("learner") == 2
    assert types.count("ps") == 1
    ps_pod = next(p for p in pods if p.meta.labels["type"] == "ps")
    assert ps_pod.phase == "Running"
    assert ps_pod.spec.resources.gpus == 0  # CPU-only


def test_ps_pods_share_the_gang():
    env, platform = make_platform()
    job_id = submit(env, platform, ps_manifest(iterations=4000))
    env.run(until=env.now + 120)
    job = platform.job(job_id)
    pods = [p for p in platform.cluster.api.list_pods()
            if p.meta.labels.get("job") == job_id
            and p.meta.labels.get("type") in ("learner", "ps")]
    assert all(p.spec.gang_name == job.statefulset_name for p in pods)
    assert all(p.spec.gang_size == 3 for p in pods)


def test_ps_job_completes_and_gc_removes_ps_pods():
    env, platform = make_platform()
    job_id = submit(env, platform, ps_manifest(iterations=1000))
    assert run_to_terminal(env, platform, job_id, limit=1e7) == \
        st.COMPLETED
    env.run(until=env.now + 60)
    job = platform.job(job_id)
    assert not platform.cluster.api.exists("statefulsets",
                                           job.ps_set_name)
    # Completed Guardian pods linger like real K8S Job pods; no live
    # learner/ps/helper pods remain.
    leftovers = [p for p in platform.cluster.api.list_pods()
                 if p.meta.labels.get("job") == job_id
                 and not p.is_terminal]
    assert leftovers == []
    assert platform.cluster.allocated_gpus() == 0


def test_learner_crash_recovers_via_ps_without_checkpoint():
    env, platform = make_platform()
    manifest = ps_manifest(iterations=3000, ckpt=0)  # no checkpoints!
    job_id = submit(env, platform, manifest)
    job = platform.job(job_id)
    while job.learner_states[0].iterations_done < 800 and env.now < 5000:
        env.run(until=env.now + 10)
    assert job.learner_states[0].iterations_done >= 800
    learner_pod = next(p for p in platform.learner_pods(job_id)
                       if p.name.endswith("-0"))
    platform.kill_pod_containers(learner_pod.name)
    status = run_to_terminal(env, platform, job_id, limit=1e7)
    assert status == st.COMPLETED
    state = job.learner_states[0]
    # Recovered from the parameter server, not from object storage.
    assert state.checkpoints_loaded == 0
    assert state.iterations_done == 3000


def test_without_ps_crash_without_checkpoint_restarts_from_zero():
    """Contrast case: same crash, no PS, no checkpoints -> work lost."""
    env, platform = make_platform()
    manifest = make_manifest(learners=1, iterations=3000, ckpt=0)
    job_id = submit(env, platform, manifest)
    job = platform.job(job_id)
    while job.learner_states[0].iterations_done < 800 and env.now < 5000:
        env.run(until=env.now + 10)
    progressed = job.learner_states[0].iterations_done
    platform.kill_pod_containers(platform.learner_pods(job_id)[0].name)
    env.run(until=env.now + 60)
    # Fresh start: progress went backwards.
    assert job.learner_states[0].iterations_done < progressed


def test_negative_ps_count_rejected():
    from repro.errors import ValidationError
    manifest = ps_manifest()
    manifest.parameter_servers = -1
    with pytest.raises(ValidationError):
        manifest.validate()
