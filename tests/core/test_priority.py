"""Tests for the priority-management extension (Section 3.6 ongoing work)."""

import pytest

from repro.core.priority import EXTERNAL, INTERNAL, PriorityManager

HOUR = 3600.0


def test_registration_kinds():
    pm = PriorityManager()
    pm.register_internal("alice")
    pm.register_external("acme", bid_multiplier=2.0)
    assert pm.user_kind("alice") == INTERNAL
    assert pm.user_kind("acme") == EXTERNAL
    assert pm.user_kind("ghost") is None


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        PriorityManager(half_life_hours=0)
    pm = PriorityManager()
    with pytest.raises(ValueError):
        pm.register_external("x", bid_multiplier=0)


def test_light_internal_user_has_full_priority():
    pm = PriorityManager()
    pm.register_internal("light")
    assert pm.priority("light", now_s=0.0) == pytest.approx(100.0)


def test_heavy_internal_user_priority_decreases():
    pm = PriorityManager()
    pm.register_internal("heavy")
    pm.register_internal("light")
    pm.charge("heavy", gpus=16, duration_s=24 * HOUR, now_s=24 * HOUR)
    heavy = pm.priority("heavy", now_s=24 * HOUR)
    light = pm.priority("light", now_s=24 * HOUR)
    assert heavy < light
    # Exponential: doubling the usage squares the priority ratio.
    pm.charge("heavy", gpus=16, duration_s=24 * HOUR, now_s=24 * HOUR)
    heavier = pm.priority("heavy", now_s=24 * HOUR)
    assert heavier < heavy


def test_usage_decays_with_half_life():
    pm = PriorityManager(half_life_hours=24.0)
    pm.register_internal("u")
    pm.charge("u", gpus=10, duration_s=HOUR, now_s=0.0)
    initial = pm.decayed_usage("u", now_s=0.0)
    after_one_half_life = pm.decayed_usage("u", now_s=24 * HOUR)
    assert after_one_half_life == pytest.approx(initial / 2, rel=0.01)
    # Priority recovers as usage decays (query in time order: the decayed
    # accounting is monotone in now_s).
    soon = pm.priority("u", now_s=24 * HOUR)
    later = pm.priority("u", now_s=240 * HOUR)
    assert later > soon


def test_price_rises_with_utilization():
    pm = PriorityManager()
    assert pm.current_price(0.0) == pytest.approx(1.0)
    assert pm.current_price(0.5) < pm.current_price(0.9)
    assert pm.current_price(1.5) == pm.current_price(1.0)  # clamped


def test_external_priority_follows_bid_vs_price():
    pm = PriorityManager()
    pm.register_external("cheap", bid_multiplier=1.0)
    pm.register_external("premium", bid_multiplier=3.0)
    # Idle cluster: both afford the price.
    assert pm.priority("cheap", 0.0, cluster_utilization=0.0) > 0
    # Saturated cluster: the premium bidder outranks the base bidder.
    cheap = pm.priority("cheap", 0.0, cluster_utilization=1.0)
    premium = pm.priority("premium", 0.0, cluster_utilization=1.0)
    assert premium > cheap


def test_dispatch_order_priority_then_fcfs():
    pm = PriorityManager()
    pm.register_internal("heavy")
    pm.register_internal("light")
    pm.charge("heavy", gpus=32, duration_s=48 * HOUR, now_s=0.0)
    queued = [("j1", "heavy", 0.0), ("j2", "light", 10.0),
              ("j3", "light", 5.0)]
    order = pm.dispatch_order(queued, now_s=0.0)
    # Light user's jobs first (FCFS between them), heavy user last.
    assert order == ["j3", "j2", "j1"]


def test_dispatch_order_mixes_internal_and_external():
    pm = PriorityManager()
    pm.register_internal("engineer")
    pm.register_external("customer", bid_multiplier=3.0)
    queued = [("a", "engineer", 0.0), ("b", "customer", 1.0)]
    order = pm.dispatch_order(queued, now_s=0.0,
                              cluster_utilization=0.9)
    assert order[0] == "b"  # high bidder wins on a busy cluster
