"""End-to-end tests with Raft-replicated etcd and a MongoDB replica set.

The paper: "Both MongoDB and etcd are also replicated for high
availability."  These tests run full training jobs against the replicated
backends and crash replicas mid-flight.
"""


from repro.core import PlatformConfig, statuses as st

from tests.core.conftest import (
    make_manifest,
    make_platform,
    run_to_terminal,
    submit,
)


def replicated_platform(**kwargs):
    config = PlatformConfig(etcd_replicas=3, mongo_secondaries=2)
    return make_platform(config=config, **kwargs)


def test_job_completes_on_replicated_backends():
    env, platform = replicated_platform()
    env.run(until=2.0)  # let the etcd Raft group elect
    job_id = submit(env, platform, make_manifest(iterations=200))
    assert run_to_terminal(env, platform, job_id, limit=1e7) == \
        st.COMPLETED
    # Job metadata replicated to every Mongo member.
    env.run(until=env.now + 5)
    for member in platform.mongo.members:
        doc = member.collection("jobs").find_one({"_id": job_id})
        assert doc is not None and doc["status"] == st.COMPLETED


def test_job_survives_etcd_leader_crash():
    env, platform = replicated_platform()
    env.run(until=2.0)
    job_id = submit(env, platform, make_manifest(iterations=2500))
    job = platform.job(job_id)
    while job.status.current != st.PROCESSING and env.now < 3000:
        env.run(until=env.now + 5)
    assert job.status.current == st.PROCESSING
    crashed = platform.etcd.crash_leader()
    assert crashed is not None
    status = run_to_terminal(env, platform, job_id, limit=1e7)
    assert status == st.COMPLETED


def test_job_survives_mongo_primary_crash():
    env, platform = replicated_platform()
    env.run(until=2.0)
    job_id = submit(env, platform, make_manifest(iterations=2000))
    env.run(until=env.now + 60)
    platform.mongo.crash_member(platform.mongo.primary_index)
    status = run_to_terminal(env, platform, job_id, limit=1e7)
    assert status == st.COMPLETED
    doc = platform.mongo.collection("jobs").find_one({"_id": job_id})
    assert doc["status"] == st.COMPLETED


def test_etcd_status_keys_replicated_across_members():
    env, platform = replicated_platform()
    env.run(until=2.0)
    job_id = submit(env, platform, make_manifest(iterations=3000))
    job = platform.job(job_id)
    while job.status.current != st.PROCESSING and env.now < 3000:
        env.run(until=env.now + 5)
    env.run(until=env.now + 10)
    prefix = f"/jobs/{job_id}/"
    hub_keys = [kv.key for kv in platform.etcd.hub.range(prefix)]
    assert hub_keys  # learner statuses present
    for sm in platform.etcd.replicas.values():
        replica_keys = [kv.key for kv in sm.store.range(prefix)]
        assert set(hub_keys) <= set(replica_keys) | set(hub_keys)
        assert replica_keys  # replicated through Raft
