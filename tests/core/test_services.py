"""Tests for replicated microservices, metrics and log index."""

import pytest

from repro.core import Microservice, TrainingMetricsService
from repro.core.logging_service import LogIndex
from repro.errors import CircuitOpenError, DeadlineExceededError
from repro.resilience import CircuitBreaker
from repro.sim import Environment, RngRegistry


def make_service(replicas=2, recovery=(3.0, 5.0)):
    env = Environment()
    metrics = TrainingMetricsService(env)
    service = Microservice(env, RngRegistry(0), "svc", replicas=replicas,
                           recovery_range_s=recovery, metrics=metrics)
    return env, service, metrics


def test_call_returns_result_with_latency():
    env, service, _m = make_service()

    def flow():
        result = yield service.call(lambda: 42)
        return result, env.now

    result, when = env.run_until_complete(env.process(flow()))
    assert result == 42
    assert when == pytest.approx(service.request_latency_s)


def test_single_replica_crash_keeps_service_available():
    env, service, _m = make_service(replicas=2)
    service.crash_replica()
    assert service.available

    def flow():
        return (yield service.call(lambda: "ok"))

    assert env.run_until_complete(env.process(flow()),
                                  limit=10) == "ok"


def test_total_outage_blocks_until_recovery():
    env, service, _m = make_service(replicas=2, recovery=(3.0, 3.0))
    service.crash_replica()
    service.crash_replica()
    assert not service.available

    def flow():
        result = yield service.call(lambda: "served")
        return result, env.now

    result, when = env.run_until_complete(env.process(flow()), limit=100)
    assert result == "served"
    assert when >= 3.0


def test_recovery_time_within_configured_range():
    env, service, _m = make_service(recovery=(3.0, 5.0))
    for _ in range(5):
        service.crash_replica()
        env.run(until=env.now + 10)
    for down, up in service.recovery_log:
        assert 3.0 <= up - down <= 5.0


def test_metrics_track_failures_and_recoveries():
    env, service, metrics = make_service()
    service.crash_replica()
    env.run(until=20)
    assert metrics.component_failures["svc"] == 1
    assert metrics.component_recoveries["svc"] == 1


def test_crash_beyond_all_replicas_is_noop():
    env, service, _m = make_service(replicas=1)
    service.crash_replica()
    assert service.crash_replica() == 0.0


def test_replicas_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Microservice(env, RngRegistry(0), "bad", replicas=0)


def make_guarded_service(replicas=2, recovery=(30.0, 30.0),
                         failure_threshold=2, reset_timeout_s=10.0):
    env = Environment()
    breaker = CircuitBreaker(env, failure_threshold=failure_threshold,
                             reset_timeout_s=reset_timeout_s, name="svc")
    service = Microservice(env, RngRegistry(0), "svc", replicas=replicas,
                           recovery_range_s=recovery, breaker=breaker)
    return env, service, breaker


def call_sync(env, service, deadline_s=None, limit=1000):
    def flow():
        return (yield service.call(lambda: "served",
                                   deadline_s=deadline_s))
    return env.run_until_complete(env.process(flow()), limit=limit)


def test_deadline_consumed_against_fully_crashed_replicas():
    """A request against a dead replica set burns its Deadline against
    the recovery wait and fails at the deadline, not at recovery."""
    env, service, _b = make_guarded_service(recovery=(30.0, 30.0))
    service.crash_replica()
    service.crash_replica()
    assert not service.available
    with pytest.raises(DeadlineExceededError):
        call_sync(env, service, deadline_s=2.0)
    # The caller got its answer at the deadline, long before the 30s
    # replica recovery.
    assert env.now == pytest.approx(2.0)
    assert service.requests_served == 0


def test_deadline_misses_trip_breaker_and_fail_fast():
    """Consecutive deadline misses open the breaker; an OPEN breaker
    rejects the next call immediately instead of burning its deadline
    against the same dead backend."""
    env, service, breaker = make_guarded_service(
        recovery=(30.0, 30.0), failure_threshold=2, reset_timeout_s=10.0)
    service.take_down()
    for _ in range(2):
        with pytest.raises(DeadlineExceededError):
            call_sync(env, service, deadline_s=1.0)
    assert breaker.state == "open"
    rejected_at = env.now
    with pytest.raises(CircuitOpenError):
        call_sync(env, service, deadline_s=1.0)
    # Fail-fast: no deadline was consumed by the rejected call.
    assert env.now == rejected_at


def test_half_open_probe_closes_breaker_after_recovery():
    env, service, breaker = make_guarded_service(
        recovery=(30.0, 30.0), failure_threshold=1, reset_timeout_s=5.0)
    service.take_down()
    with pytest.raises(DeadlineExceededError):
        call_sync(env, service, deadline_s=1.0)
    assert breaker.state == "open"
    service.restore()
    # Still inside the reset window: rejected without touching the
    # (now healthy) service.
    with pytest.raises(CircuitOpenError):
        call_sync(env, service, deadline_s=1.0)
    env.run(until=env.now + 5.0)
    # Past the window the HALF_OPEN probe rides an ordinary request and
    # its success closes the breaker.
    assert call_sync(env, service, deadline_s=1.0) == "served"
    assert breaker.state == "closed"
    assert service.requests_served == 1


def test_recovery_range_pinned_with_breaker_open():
    """Table 3 behaviour is unchanged by the breaker: replicas recover
    within the configured range even while the circuit is open, and the
    first admitted call after the reset window is served."""
    env, service, breaker = make_guarded_service(
        recovery=(3.0, 5.0), failure_threshold=1, reset_timeout_s=10.0)
    service.crash_replica()
    service.crash_replica()
    with pytest.raises(DeadlineExceededError):
        call_sync(env, service, deadline_s=1.0)
    assert breaker.state == "open"
    env.run(until=20.0)
    for down, up in service.recovery_log:
        assert 3.0 <= up - down <= 5.0
    assert service.available
    assert call_sync(env, service, deadline_s=1.0) == "served"
    assert breaker.state == "closed"


def test_metrics_series_and_aggregates():
    env = Environment()
    metrics = TrainingMetricsService(env)
    metrics.emit("gpu_util", 0.5, node="n1")
    metrics.emit("gpu_util", 0.7, node="n1")
    assert len(metrics.series("gpu_util")) == 2
    assert metrics.latest("gpu_util") == 0.7
    assert metrics.sum("gpu_util") == pytest.approx(1.2)
    with pytest.raises(KeyError):
        metrics.latest("missing")


def test_log_index_search_and_sources():
    index = LogIndex()
    index.ingest("job-1", "learners/0/log", "PROCESSING started", 1.0)
    index.ingest("job-1", "learners/1/log", "CUDA OOM", 2.0)
    index.ingest("job-2", "learners/0/log", "other job", 3.0)
    assert len(index.logs_for("job-1")) == 2
    assert len(index.logs_for("job-1", "learners/0/log")) == 1
    assert [e.line for e in index.search("job-1", "OOM")] == ["CUDA OOM"]
    assert index.job_ids() == ["job-1", "job-2"]
    assert index.total_entries == 3
