"""Dependable status updates (a core Section 2 requirement).

"Users expect periodic and accurate status updates ... These status
updates should be dependable because users use associated timestamps for
job profiling and debugging.  Further since the users are charged for
their actual GPU usage, transparency about the true status of jobs is
important."
"""

import pytest

from repro.core import statuses as st

from tests.core.conftest import (
    make_manifest,
    make_platform,
    run_to_terminal,
    submit,
)


def finished_job(env, platform, **kwargs):
    job_id = submit(env, platform, make_manifest(**kwargs))
    run_to_terminal(env, platform, job_id)
    return platform.job(job_id)


def test_mongo_history_matches_platform_history_exactly():
    env, platform = make_platform()
    job = finished_job(env, platform, iterations=300)
    doc = platform.mongo.collection("jobs").find_one({"_id": job.job_id})
    mongo_history = [(h["status"], h["time"])
                     for h in doc["status_history"]]
    assert mongo_history == job.status.timeline()


def test_timestamps_bound_actual_execution():
    env, platform = make_platform()
    job = finished_job(env, platform, iterations=400)
    processing_at = job.status.time_of(st.PROCESSING)
    completed_at = job.status.time_of(st.COMPLETED)
    # PROCESSING must not be reported before the learner actually started
    # (started_at is stamped by the kubelet when containers launch).
    deploying_at = job.status.time_of(st.DEPLOYING)
    assert deploying_at < processing_at < completed_at
    assert job.finished_at == completed_at


def test_status_durations_sum_to_total_runtime():
    env, platform = make_platform()
    job = finished_job(env, platform, iterations=400)
    timeline = job.status.timeline()
    total = timeline[-1][1] - timeline[0][1]
    summed = sum(job.status.duration_in(status)
                 for status in sorted({s for s, _t in timeline}))
    assert summed == pytest.approx(total)


def test_billing_window_reflects_gpu_holding_time():
    """GPU usage charged from scheduling to release must cover the
    PROCESSING phase (the user-visible part of what they pay for)."""
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(iterations=600))
    job = platform.job(job_id)
    # Track actual allocation over time.
    samples = []

    def sampler():
        while not job.status.is_terminal:
            samples.append((env.now, platform.cluster.allocated_gpus()))
            yield env.timeout(5.0)

    env.process(sampler())
    run_to_terminal(env, platform, job_id)
    held = [t for t, gpus in samples if gpus > 0]
    processing_at = job.status.time_of(st.PROCESSING)
    storing_end = job.finished_at
    # GPUs were held throughout the PROCESSING window.
    assert min(held) <= processing_at
    assert max(held) >= storing_end - 10.0


def test_restart_visible_in_status_history():
    """A learner restart must be observable (the paper: 'users expect to
    be notified when DL jobs are restarted')."""
    env, platform = make_platform()
    job_id = submit(env, platform, make_manifest(iterations=3000,
                                                 ckpt=500))
    job = platform.job(job_id)
    while job.learner_states[0].checkpoints_written < 1 and \
            env.now < 5000:
        env.run(until=env.now + 10)
    platform.kill_pod_containers(platform.learner_pods(job_id)[0].name)
    run_to_terminal(env, platform, job_id, limit=1e7)
    # The restart is observable: the learner state records it and the
    # collected logs show training re-entering DOWNLOADING.  (The
    # job-level status stream may coalesce the brief second DOWNLOADING
    # when the dataset is already cached — the logs never do.)
    assert job.learner_states[0].restarts >= 1
    log_lines = [entry.line for entry in platform.stream_logs(job_id)]
    assert sum(1 for line in log_lines
               if st.DOWNLOADING in line) >= 2
