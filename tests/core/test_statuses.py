"""Unit tests for the job status state machine."""

import pytest

from repro.core import statuses as st
from repro.core.statuses import StatusHistory, is_valid_transition
from repro.errors import PlatformError


def test_normal_pipeline():
    history = StatusHistory()
    for i, status in enumerate([st.QUEUED, st.DEPLOYING, st.DOWNLOADING,
                                st.PROCESSING, st.STORING, st.COMPLETED]):
        history.transition(status, float(i))
    assert history.current == st.COMPLETED
    assert history.is_terminal


def test_unknown_status_rejected():
    history = StatusHistory()
    with pytest.raises(PlatformError):
        history.transition("EXPLODED", 0.0)


def test_illegal_transition_rejected():
    history = StatusHistory()
    history.transition(st.COMPLETED, 0.0) if False else None
    history.transition(st.QUEUED, 0.0)
    with pytest.raises(PlatformError):
        history.transition(st.PROCESSING, 1.0)  # must deploy first


def test_completed_is_final():
    history = StatusHistory()
    history.transition(st.QUEUED, 0.0)
    history.transition(st.DEPLOYING, 1.0)
    history.transition(st.COMPLETED, 2.0)
    with pytest.raises(PlatformError):
        history.transition(st.PROCESSING, 3.0)


def test_halt_resume_cycle():
    history = StatusHistory()
    for status, t in [(st.QUEUED, 0), (st.DEPLOYING, 1),
                      (st.DOWNLOADING, 2), (st.PROCESSING, 3),
                      (st.HALTED, 4), (st.RESUMED, 5), (st.DEPLOYING, 6),
                      (st.DOWNLOADING, 7), (st.PROCESSING, 8),
                      (st.STORING, 9), (st.COMPLETED, 10)]:
        history.transition(status, float(t))
    assert history.current == st.COMPLETED


def test_restart_goes_back_to_downloading():
    history = StatusHistory()
    for status, t in [(st.QUEUED, 0), (st.DEPLOYING, 1),
                      (st.DOWNLOADING, 2), (st.PROCESSING, 3),
                      (st.DOWNLOADING, 4)]:
        history.transition(status, float(t))
    assert history.current == st.DOWNLOADING


def test_duration_in_status():
    history = StatusHistory()
    history.transition(st.QUEUED, 0.0)
    history.transition(st.DEPLOYING, 10.0)
    history.transition(st.DOWNLOADING, 15.0)
    assert history.duration_in(st.QUEUED) == 10.0
    assert history.duration_in(st.DEPLOYING) == 5.0
    assert history.duration_in(st.PROCESSING) == 0.0


def test_time_of_first_entry():
    history = StatusHistory()
    history.transition(st.QUEUED, 1.0)
    history.transition(st.DEPLOYING, 2.0)
    assert history.time_of(st.QUEUED) == 1.0
    assert history.time_of(st.COMPLETED) is None


def test_is_valid_transition_helper():
    assert is_valid_transition(None, st.QUEUED)
    assert is_valid_transition(st.PROCESSING, st.COMPLETED)
    assert not is_valid_transition(st.COMPLETED, st.QUEUED)
    assert not is_valid_transition(st.HALTED, st.PROCESSING)
