"""Tests for the container runtime."""

import pytest

from repro.docker import CREATED, Container, EXITED, Image, RUNNING, Registry
from repro.docker.runtime import SIGKILL_EXIT_CODE
from repro.errors import ContainerError, ImageNotFoundError
from repro.sim import Environment

TF_IMAGE = Image("tensorflow", "1.5", framework="tensorflow",
                 size_bytes=2.5e9)


def test_image_reference():
    assert TF_IMAGE.reference == "tensorflow:1.5"


def test_registry_push_get_and_missing():
    env = Environment()
    registry = Registry(env)
    registry.push(TF_IMAGE)
    assert registry.get("tensorflow:1.5") is TF_IMAGE
    with pytest.raises(ImageNotFoundError):
        registry.get("caffe:1.0")


def test_pull_cold_then_cached():
    env = Environment()
    registry = Registry(env, pull_bandwidth_bps=2.5e8)
    registry.push(TF_IMAGE)

    def flow():
        yield registry.pull("node-1", "tensorflow:1.5")
        cold = env.now
        yield registry.pull("node-1", "tensorflow:1.5")
        return cold, env.now

    cold, warm = env.run_until_complete(env.process(flow()))
    assert cold == pytest.approx(10.0)  # 2.5 GB at 250 MB/s
    assert warm - cold == pytest.approx(0.1)
    assert registry.cache_hits == 1


def test_pull_cache_is_per_node():
    env = Environment()
    registry = Registry(env, pull_bandwidth_bps=2.5e8)
    registry.push(TF_IMAGE)

    def flow():
        yield registry.pull("node-1", "tensorflow:1.5")
        yield registry.pull("node-2", "tensorflow:1.5")

    env.run_until_complete(env.process(flow()))
    assert registry.cache_hits == 0


def test_container_runs_workload_to_completion():
    env = Environment()

    def workload(container):
        container.log("training")
        yield env.timeout(10)
        return 0

    c = Container(env, TF_IMAGE, "learner-0", workload)
    assert c.state == CREATED
    c.start()
    assert c.state == RUNNING
    env.run()
    assert c.state == EXITED
    assert c.exit_code == 0
    assert c.runtime_s == pytest.approx(10.0)
    assert c.logs[0][1] == "training"


def test_container_nonzero_exit_code():
    env = Environment()

    def workload(container):
        yield env.timeout(1)
        return 42

    c = Container(env, TF_IMAGE, "learner-0", workload)
    c.start()
    env.run()
    assert c.exit_code == 42


def test_workload_exception_maps_to_exit_1():
    env = Environment()

    def workload(container):
        yield env.timeout(1)
        raise RuntimeError("CUDA OOM")

    c = Container(env, TF_IMAGE, "learner-0", workload)
    c.start()
    env.run()
    assert c.exit_code == 1
    assert any("CUDA OOM" in line for _t, line in c.logs)


def test_kill_running_container():
    env = Environment()

    def workload(container):
        yield env.timeout(100)
        return 0

    c = Container(env, TF_IMAGE, "learner-0", workload)
    c.start()

    def killer():
        yield env.timeout(5)
        c.kill()

    env.process(killer())
    env.run()
    assert c.state == EXITED
    assert c.exit_code == SIGKILL_EXIT_CODE
    assert c.finished_at == 5


def test_kill_is_idempotent_and_safe_after_exit():
    env = Environment()

    def workload(container):
        yield env.timeout(1)
        return 0

    c = Container(env, TF_IMAGE, "learner-0", workload)
    c.start()
    env.run()
    c.kill()  # exited already: no-op
    assert c.exit_code == 0


def test_wait_resolves_with_exit_code():
    env = Environment()

    def workload(container):
        yield env.timeout(3)
        return 7

    c = Container(env, TF_IMAGE, "learner-0", workload)
    c.start()

    def waiter():
        code = yield c.wait()
        return code, env.now

    result = env.run_until_complete(env.process(waiter()))
    assert result == (7, 3.0)


def test_wait_after_exit_resolves_immediately():
    env = Environment()

    def workload(container):
        yield env.timeout(1)
        return 0

    c = Container(env, TF_IMAGE, "learner-0", workload)
    c.start()
    env.run()

    def waiter():
        code = yield c.wait()
        return code

    assert env.run_until_complete(env.process(waiter())) == 0


def test_double_start_rejected():
    env = Environment()
    c = Container(env, TF_IMAGE, "idle")
    c.start()
    with pytest.raises(ContainerError):
        c.start()


def test_idle_container_runs_until_killed():
    env = Environment()
    c = Container(env, TF_IMAGE, "sidecar")
    c.start()
    env.run(until=10)
    assert c.is_running
    c.kill()
    assert c.state == EXITED
