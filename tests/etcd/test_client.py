"""Tests for the EtcdClient facade."""

import pytest

from repro.etcd import EtcdClient, EtcdStore, ReplicatedEtcd
from repro.sim import Environment, RngRegistry


def standalone_client(latency=0.002):
    env = Environment()
    store = EtcdStore(env)
    return env, store, EtcdClient(env, store, latency_s=latency)


def test_put_and_get_roundtrip():
    env, _store, client = standalone_client()

    def flow():
        yield client.put("k", "v")
        kv = yield client.get("k")
        return kv.value

    assert env.run_until_complete(env.process(flow())) == "v"


def test_ops_take_latency():
    env, _store, client = standalone_client(latency=0.01)

    def flow():
        yield client.put("k", 1)
        return env.now

    assert env.run_until_complete(env.process(flow())) == pytest.approx(0.01)


def test_get_value_resolves_bare_value_or_none():
    env, store, client = standalone_client()
    store.put("k", 42)

    def flow():
        present = yield client.get_value("k")
        absent = yield client.get_value("missing")
        return present, absent

    assert env.run_until_complete(env.process(flow())) == (42, None)


def test_range_through_client():
    env, store, client = standalone_client()
    store.put("a/1", 1)
    store.put("a/2", 2)

    def flow():
        kvs = yield client.range("a/")
        return [kv.key for kv in kvs]

    assert env.run_until_complete(env.process(flow())) == ["a/1", "a/2"]


def test_delete_prefix_through_client():
    env, store, client = standalone_client()
    store.put("a/1", 1)
    store.put("a/2", 2)

    def flow():
        count = yield client.delete_prefix("a/")
        return count

    assert env.run_until_complete(env.process(flow())) == 2


def test_watch_is_synchronous_and_streams():
    env, _store, client = standalone_client()
    watcher = client.watch_prefix("jobs/")

    def flow():
        yield client.put("jobs/1", "x")
        ev = yield watcher.get()
        return ev.key

    assert env.run_until_complete(env.process(flow())) == "jobs/1"
    watcher.cancel()


def test_lease_grant_keepalive_revoke():
    env, _store, client = standalone_client()

    def flow():
        lease = yield client.grant_lease(10.0)
        yield client.put("k", 1, lease_id=lease.lease_id)
        alive = yield client.keepalive(lease.lease_id)
        assert alive
        yield client.revoke(lease.lease_id)
        value = yield client.get_value("k")
        return value, client.lease_alive(lease.lease_id)

    value, alive = env.run_until_complete(env.process(flow()))
    assert value is None
    assert not alive


def test_client_counts_ops():
    env, _store, client = standalone_client()

    def flow():
        yield client.put("a", 1)
        yield client.get("a")

    env.run_until_complete(env.process(flow()))
    assert client.ops_issued == 2


def test_client_over_replicated_backend():
    env = Environment()
    etcd = ReplicatedEtcd(env, RngRegistry(0), size=3)
    client = EtcdClient(env, etcd)
    env.run(until=1.0)

    def flow():
        yield client.put("k", "v")
        value = yield client.get_value("k")
        return value

    assert env.run_until_complete(env.process(flow()),
                                  limit=env.now + 20) == "v"
