"""Unit tests for the single-node etcd store."""

import pytest

from repro.errors import CompareFailedError, LeaseExpiredError, StoreError
from repro.etcd import Compare, EtcdStore, Op
from repro.sim import Environment


@pytest.fixture
def store():
    return EtcdStore(Environment())


def test_put_then_get(store):
    store.put("a", 1)
    kv = store.get("a")
    assert kv.value == 1
    assert kv.version == 1


def test_get_missing_returns_none(store):
    assert store.get("nope") is None


def test_put_bumps_version_and_mod_revision(store):
    first = store.put("a", 1)
    second = store.put("a", 2)
    assert second.version == 2
    assert second.mod_revision > first.mod_revision
    assert second.create_revision == first.create_revision


def test_revision_is_global(store):
    store.put("a", 1)
    store.put("b", 1)
    assert store.get("b").mod_revision == 2


def test_delete_returns_count(store):
    store.put("a", 1)
    assert store.delete("a") == 1
    assert store.delete("a") == 0
    assert store.get("a") is None


def test_delete_bumps_revision(store):
    store.put("a", 1)
    rev = store.revision
    store.delete("a")
    assert store.revision == rev + 1


def test_range_returns_sorted_prefix_matches(store):
    store.put("jobs/2", "b")
    store.put("jobs/1", "a")
    store.put("other/1", "x")
    result = store.range("jobs/")
    assert [kv.key for kv in result] == ["jobs/1", "jobs/2"]


def test_delete_prefix(store):
    store.put("jobs/1", 1)
    store.put("jobs/2", 2)
    store.put("keep", 3)
    assert store.delete_prefix("jobs/") == 2
    assert store.keys() == ["keep"]


def test_txn_success_branch(store):
    store.put("status", "PENDING")
    ok, _results = store.txn(
        [Compare("status", "value", "==", "PENDING")],
        [Op("put", "status", "RUNNING")],
        [Op("put", "status", "CONFLICT")])
    assert ok
    assert store.get("status").value == "RUNNING"


def test_txn_failure_branch(store):
    store.put("status", "FAILED")
    ok, _results = store.txn(
        [Compare("status", "value", "==", "PENDING")],
        [Op("put", "status", "RUNNING")],
        [Op("put", "marker", "fell-through")])
    assert not ok
    assert store.get("status").value == "FAILED"
    assert store.get("marker").value == "fell-through"


def test_txn_version_zero_means_absent(store):
    ok, _ = store.txn([Compare("new-key", "version", "==", 0)],
                      [Op("put", "new-key", "created")])
    assert ok
    # Second attempt: key now exists, guard fails.
    ok2, _ = store.txn([Compare("new-key", "version", "==", 0)],
                       [Op("put", "new-key", "clobbered")])
    assert not ok2
    assert store.get("new-key").value == "created"


def test_txn_delete_op(store):
    store.put("a", 1)
    ok, results = store.txn([], [Op("delete", "a")])
    assert ok and results == [1]


def test_txn_unknown_op_rejected(store):
    with pytest.raises(StoreError):
        store.txn([], [Op("frobnicate", "a")])


def test_check_unknown_field_rejected(store):
    with pytest.raises(StoreError):
        store.check(Compare("a", "colour", "==", 1))


def test_check_comparison_operators(store):
    store.put("a", 5)
    assert store.check(Compare("a", "value", ">", 4))
    assert store.check(Compare("a", "value", "<", 6))
    assert store.check(Compare("a", "value", "!=", 9))
    with pytest.raises(StoreError):
        store.check(Compare("a", "value", "~=", 1))


def test_cas_success_and_failure(store):
    store.put("k", "old")
    store.cas("k", "old", "new")
    assert store.get("k").value == "new"
    with pytest.raises(CompareFailedError):
        store.cas("k", "old", "newer")


def test_put_with_dead_lease_rejected(store):
    with pytest.raises(LeaseExpiredError):
        store.put("a", 1, lease_id=999)


def test_len_counts_keys(store):
    store.put("a", 1)
    store.put("b", 2)
    assert len(store) == 2
