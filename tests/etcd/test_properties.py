"""Property-based tests for etcd store invariants."""


from hypothesis import given, settings, strategies as st

from repro.etcd import EtcdStore
from repro.sim import Environment

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from("abcde"),
                  st.integers(min_value=0, max_value=100)),
        st.tuples(st.just("delete"), st.sampled_from("abcde"),
                  st.just(0)),
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_revision_strictly_increases_on_effective_writes(ops):
    store = EtcdStore(Environment())
    last_revision = 0
    for op, key, value in ops:
        before = store.revision
        if op == "put":
            store.put(key, value)
            assert store.revision == before + 1
        else:
            removed = store.delete(key)
            assert store.revision == before + (1 if removed else 0)
        assert store.revision >= last_revision
        last_revision = store.revision


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_store_matches_dict_semantics(ops):
    store = EtcdStore(Environment())
    model = {}
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
            model[key] = value
        else:
            store.delete(key)
            model.pop(key, None)
    for key in "abcde":
        kv = store.get(key)
        if key in model:
            assert kv is not None and kv.value == model[key]
        else:
            assert kv is None
    assert store.keys() == sorted(model)


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_version_counts_puts_since_creation(ops):
    store = EtcdStore(Environment())
    puts_since_create = {}
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
            puts_since_create[key] = puts_since_create.get(key, 0) + 1
        else:
            if store.delete(key):
                puts_since_create.pop(key, None)
    for key, count in puts_since_create.items():
        assert store.get(key).version == count


@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_watch_replays_every_effective_change(ops):
    store = EtcdStore(Environment())
    watcher = store.watch_prefix("")
    effective = 0
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
            effective += 1
        else:
            effective += store.delete(key)
    assert watcher.pending() == effective
    watcher.cancel()


@settings(max_examples=40, deadline=None)
@given(ttls=st.lists(st.floats(min_value=1.0, max_value=50.0),
                     min_size=1, max_size=8))
def test_all_leased_keys_gone_after_all_ttls(ttls):
    env = Environment()
    store = EtcdStore(env)
    for i, ttl in enumerate(ttls):
        lease = store.grant_lease(ttl)
        store.put(f"k{i}", i, lease_id=lease.lease_id)
    env.run(until=max(ttls) + 1.0)
    assert len(store) == 0
