"""Tests for Raft-replicated etcd."""

import pytest

from repro.etcd import ReplicatedEtcd
from repro.sim import Environment, RngRegistry


@pytest.fixture
def setup():
    env = Environment()
    etcd = ReplicatedEtcd(env, RngRegistry(0), size=3)
    env.run(until=1.0)  # elect a leader
    return env, etcd


def test_put_reaches_hub_and_all_replicas(setup):
    env, etcd = setup
    env.run_until_complete(etcd.put("k", "v"), limit=env.now + 10)
    env.run(until=env.now + 1.0)
    assert etcd.get("k").value == "v"
    for sm in etcd.replicas.values():
        assert sm.store.get("k").value == "v"


def test_delete_replicates(setup):
    env, etcd = setup
    env.run_until_complete(etcd.put("k", "v"), limit=env.now + 10)
    env.run_until_complete(etcd.delete("k"), limit=env.now + 10)
    env.run(until=env.now + 1.0)
    assert etcd.get("k") is None
    for sm in etcd.replicas.values():
        assert sm.store.get("k") is None


def test_survives_leader_crash(setup):
    env, etcd = setup
    env.run_until_complete(etcd.put("before", 1), limit=env.now + 10)
    etcd.crash_leader()
    env.run(until=env.now + 2.0)
    env.run_until_complete(etcd.put("after", 2), limit=env.now + 20)
    assert etcd.get("before").value == 1
    assert etcd.get("after").value == 2


def test_watch_fires_exactly_once_per_commit(setup):
    env, etcd = setup
    watcher = etcd.watch("status")
    env.run_until_complete(etcd.put("status", "A"), limit=env.now + 10)
    env.run_until_complete(etcd.put("status", "B"), limit=env.now + 10)
    env.run(until=env.now + 1.0)
    assert watcher.pending() == 2
    watcher.cancel()


def test_restarted_replica_converges(setup):
    env, etcd = setup
    victim_id = next(n for n, node in etcd.cluster.nodes.items()
                     if not node.is_leader)
    etcd.crash_replica(victim_id)
    env.run_until_complete(etcd.put("k1", 1), limit=env.now + 10)
    env.run_until_complete(etcd.put("k2", 2), limit=env.now + 10)
    etcd.restart_replica(victim_id)
    env.run(until=env.now + 2.0)
    replica = etcd.replicas[victim_id].store
    assert replica.get("k1").value == 1
    assert replica.get("k2").value == 2


def test_lease_expiry_deletes_via_consensus(setup):
    env, etcd = setup
    lease = etcd.grant_lease(ttl_s=2.0)
    env.run_until_complete(etcd.put("guarded", "x", lease_id=lease.lease_id),
                           limit=env.now + 10)
    env.run(until=env.now + 5.0)
    assert etcd.get("guarded") is None
    for sm in etcd.replicas.values():
        assert sm.store.get("guarded") is None


def test_txn_replicates(setup):
    from repro.etcd import Compare, Op
    env, etcd = setup
    env.run_until_complete(etcd.put("s", "PENDING"), limit=env.now + 10)
    env.run_until_complete(
        etcd.txn([Compare("s", "value", "==", "PENDING")],
                 [Op("put", "s", "RUNNING")]),
        limit=env.now + 10)
    env.run(until=env.now + 1.0)
    assert etcd.get("s").value == "RUNNING"
    for sm in etcd.replicas.values():
        assert sm.store.get("s").value == "RUNNING"


def test_hub_revision_matches_command_count(setup):
    env, etcd = setup
    for i in range(5):
        env.run_until_complete(etcd.put(f"k{i}", i), limit=env.now + 10)
    env.run(until=env.now + 1.0)
    assert etcd.hub.revision == 5
