"""Tests for etcd streaming watches and leases (the features the paper cites
as the reason etcd was preferred over MongoDB for coordination)."""

import pytest

from repro.errors import StoreError
from repro.etcd import DELETE, EtcdStore, PUT
from repro.sim import Environment


def test_watch_single_key_receives_puts():
    env = Environment()
    store = EtcdStore(env)
    watcher = store.watch("status/job1")
    got = []

    def consumer():
        for _ in range(2):
            ev = yield watcher.get()
            got.append((ev.type, ev.value))

    env.process(consumer())

    def producer():
        yield env.timeout(1)
        store.put("status/job1", "DOWNLOADING")
        store.put("status/other", "ignored")
        yield env.timeout(1)
        store.put("status/job1", "PROCESSING")

    env.process(producer())
    env.run()
    assert got == [(PUT, "DOWNLOADING"), (PUT, "PROCESSING")]
    watcher.cancel()


def test_watch_receives_delete_with_prev_value():
    env = Environment()
    store = EtcdStore(env)
    store.put("k", "v1")
    watcher = store.watch("k")
    store.delete("k")
    env.run()

    def consume():
        ev = yield watcher.get()
        return ev

    ev = env.run_until_complete(env.process(consume()))
    assert ev.type == DELETE
    assert ev.prev_value == "v1"
    watcher.cancel()


def test_watch_prefix_sees_all_children():
    env = Environment()
    store = EtcdStore(env)
    watcher = store.watch_prefix("learners/")
    store.put("learners/0", "RUNNING")
    store.put("learners/1", "RUNNING")
    store.put("other", "x")
    assert watcher.pending() == 2
    watcher.cancel()


def test_cancelled_watcher_gets_nothing():
    env = Environment()
    store = EtcdStore(env)
    watcher = store.watch("k")
    watcher.cancel()
    store.put("k", 1)
    assert watcher.pending() == 0


def test_close_deregisters_from_fanout_and_is_idempotent():
    env = Environment()
    store = EtcdStore(env)
    exact = store.watch("k")
    prefix = store.watch_prefix("pre/")
    exact.close()
    prefix.close()
    prefix.close()  # double close is a no-op
    before = store.watcher_visits
    store.put("k", 1)
    store.put("pre/a", 2)
    assert store.watcher_visits == before  # nothing left to visit
    assert exact.pending() == 0
    assert prefix.pending() == 0


def test_watcher_context_manager_closes_on_exit():
    env = Environment()
    store = EtcdStore(env)
    with store.watch_prefix("jobs/") as watcher:
        store.put("jobs/1", "a")
        assert watcher.pending() == 1
    assert watcher.cancelled
    store.put("jobs/2", "b")
    assert watcher.pending() == 1  # no delivery after the with-block


def test_indexed_fanout_matches_order_across_watcher_kinds():
    """Exact and prefix watchers on the same key must be delivered in
    registration order regardless of which index found them."""
    env = Environment()
    store = EtcdStore(env)
    order = []
    first = store.watch_prefix("a/")
    second = store.watch("a/b")
    third = store.watch_prefix("")

    def consumer(name, watcher):
        while True:
            yield watcher.get()
            order.append(name)

    env.process(consumer("prefix", first))
    env.process(consumer("exact", second))
    env.process(consumer("root", third))

    def producer():
        yield env.timeout(1)
        store.put("a/b", 1)

    env.process(producer())
    env.run(until=5)
    assert order == ["prefix", "exact", "root"]


def test_watch_events_carry_monotonic_revisions():
    env = Environment()
    store = EtcdStore(env)
    watcher = store.watch_prefix("")
    store.put("a", 1)
    store.put("b", 2)
    store.delete("a")
    revisions = []

    def consume():
        for _ in range(3):
            ev = yield watcher.get()
            revisions.append(ev.revision)

    env.run_until_complete(env.process(consume()))
    assert revisions == sorted(revisions)
    assert len(set(revisions)) == 3
    watcher.cancel()


def test_lease_expiry_deletes_attached_keys():
    env = Environment()
    store = EtcdStore(env)
    lease = store.grant_lease(ttl_s=10.0)
    store.put("status/zombie", "RUNNING", lease_id=lease.lease_id)
    env.run(until=9.0)
    assert store.get("status/zombie") is not None
    env.run(until=11.0)
    assert store.get("status/zombie") is None
    assert not store.lease_alive(lease.lease_id)


def test_keepalive_extends_lease():
    env = Environment()
    store = EtcdStore(env)
    lease = store.grant_lease(ttl_s=10.0)
    store.put("k", 1, lease_id=lease.lease_id)

    def heartbeat():
        for _ in range(5):
            yield env.timeout(8.0)
            assert store.keepalive(lease.lease_id)

    env.process(heartbeat())
    env.run(until=45.0)
    assert store.get("k") is not None
    env.run(until=60.0)
    assert store.get("k") is None  # heartbeats stopped at ~40s


def test_keepalive_on_dead_lease_returns_false():
    env = Environment()
    store = EtcdStore(env)
    lease = store.grant_lease(ttl_s=1.0)
    env.run(until=2.0)
    assert store.keepalive(lease.lease_id) is False


def test_revoke_deletes_keys_and_fires_watch():
    env = Environment()
    store = EtcdStore(env)
    lease = store.grant_lease(ttl_s=100.0)
    store.put("a", 1, lease_id=lease.lease_id)
    watcher = store.watch("a")
    assert store.revoke(lease.lease_id)
    assert store.get("a") is None
    assert watcher.pending() == 1
    assert not store.revoke(lease.lease_id)
    watcher.cancel()


def test_lease_ttl_must_be_positive():
    store = EtcdStore(Environment())
    with pytest.raises(StoreError):
        store.grant_lease(0)


def test_deleting_key_detaches_from_lease():
    env = Environment()
    store = EtcdStore(env)
    lease = store.grant_lease(ttl_s=5.0)
    store.put("a", 1, lease_id=lease.lease_id)
    store.delete("a")
    store.put("a", 2)  # re-created without lease
    env.run(until=10.0)
    assert store.get("a").value == 2  # expiry must not delete the new key
