"""Integration tests for the FederationDispatcher over real cells.

Each test builds a small federation (full FfDL platforms per cell) and
pins one dispatcher property: locality, quota, spillover, migration
fencing, idempotent re-submission, and the zero-lost-records contract.
"""

import pytest

from repro.core import statuses as st
from repro.core.manifest import JobManifest
from repro.errors import QuotaExceededError
from repro.federation import (
    BLACKOUT,
    Cell,
    CellSpec,
    FederationBus,
    FederationDispatcher,
    HealthConfig,
    INTENT_QUEUED,
)
from repro.sim import Environment, RngRegistry


def make_federation(specs=None, seed=0, quota=64, health=None):
    env = Environment()
    rng = RngRegistry(seed)
    bus = FederationBus(env, rng)
    specs = specs or [
        CellSpec("cell-a", zone="zone-a", gpu_nodes=2, gpus_per_node=4),
        CellSpec("cell-b", zone="zone-b", gpu_nodes=2, gpus_per_node=4),
    ]
    cells = [Cell(env, rng, spec) for spec in specs]
    dispatcher = FederationDispatcher(env, rng, bus, cells,
                                      health_config=health)
    dispatcher.register_tenant("alice", gpu_quota=quota)
    return env, cells, dispatcher


def make_manifest(name="fed-job", gpus=1, learners=1, iterations=50,
                  **kwargs):
    kwargs.setdefault("dataset_object_bytes", 1e6)
    return JobManifest(name=name, user="alice", framework="tensorflow",
                       model="resnet50", learners=learners,
                       gpus_per_learner=gpus, gpu_type="K80",
                       iterations=iterations, **kwargs)


def submit(env, dispatcher, manifest, zone=None):
    return env.run_until_complete(
        dispatcher.submit(manifest, preferred_zone=zone),
        limit=env.now + 100)


def wait_state(env, intent, state, deadline=2000):
    while intent.state != state and env.now < deadline:
        env.run(until=env.now + 1.0)
    return intent.state == state


def intent_of(dispatcher, intent_id):
    return {i.intent_id: i for i in dispatcher.intents()}[intent_id]


def test_dispatch_prefers_the_tenant_zone():
    env, cells, dispatcher = make_federation()
    intent_id = submit(env, dispatcher, make_manifest(), zone="zone-b")
    intent = intent_of(dispatcher, intent_id)
    assert wait_state(env, intent, st.COMPLETED)
    assert intent.cell == "cell-b"
    assert dispatcher.counters["spillovers"] == 0
    assert dispatcher.counters["completed"] == 1
    assert dispatcher.lost_intents() == []


def test_full_zone_spills_over_to_another_zone():
    env, cells, dispatcher = make_federation()
    # Fill zone-a's only cell (8 GPUs), then ask for one more in zone-a.
    filler_id = submit(env, dispatcher,
                       make_manifest("filler", gpus=4, learners=2,
                                     iterations=4000),
                       zone="zone-a")
    spiller_id = submit(env, dispatcher, make_manifest("spill"),
                        zone="zone-a")
    spiller = intent_of(dispatcher, spiller_id)
    assert wait_state(env, spiller, st.COMPLETED)
    assert spiller.cell == "cell-b"
    assert dispatcher.counters["spillovers"] == 1
    filler = intent_of(dispatcher, filler_id)
    assert wait_state(env, filler, st.COMPLETED, deadline=20000)


def test_federation_quota_is_global_across_cells():
    env, cells, dispatcher = make_federation(quota=8)
    submit(env, dispatcher,
           make_manifest("big", gpus=4, learners=2, iterations=4000))
    with pytest.raises(QuotaExceededError):
        submit(env, dispatcher, make_manifest("over"))
    assert dispatcher.counters["rejected_quota"] == 1


def test_unknown_tenant_rejected():
    env, cells, dispatcher = make_federation()
    stranger = JobManifest(name="x", user="mallory",
                           framework="tensorflow", model="resnet50")
    with pytest.raises(QuotaExceededError):
        submit(env, dispatcher, stranger)


def test_no_matching_gpu_type_keeps_intent_queued():
    env, cells, dispatcher = make_federation()
    manifest = make_manifest("v100-job", iterations=50)
    manifest.gpu_type = "V100"
    intent_id = submit(env, dispatcher, manifest)
    env.run(until=60.0)
    intent = intent_of(dispatcher, intent_id)
    assert intent.state == INTENT_QUEUED
    assert dispatcher.lost_intents() == []


def test_blackout_migrates_and_fences_without_double_execution():
    """The whole-cell story in one test: a blackout on the dispatched
    cell migrates the intent (generation bump), the surviving cell runs
    it to completion, and the orphan is fenced at recovery — never run
    to a second completion."""
    health = HealthConfig(probe_interval_s=2.0, probe_timeout_s=1.0,
                          blackout_failures=3, recover_probes=3)
    env, cells, dispatcher = make_federation(health=health)
    cell_a = cells[0]
    intent_id = submit(env, dispatcher,
                       make_manifest("victim", iterations=2000),
                       zone="zone-a")
    intent = intent_of(dispatcher, intent_id)
    while intent.cell_job is None and env.now < 200:
        env.run(until=env.now + 1.0)
    assert intent.cell == "cell-a"
    first_generation = intent.generation
    cell_a.begin_blackout()
    # Blackout detected after 3 missed probes; the intent migrates.
    while intent.migrations == 0 and env.now < 300:
        env.run(until=env.now + 1.0)
    assert intent.migrations == 1
    assert intent.generation > first_generation
    assert dispatcher.monitors["cell-a"].state == BLACKOUT
    assert wait_state(env, intent, st.COMPLETED, deadline=20000)
    assert intent.cell == "cell-b"
    cell_a.end_blackout()
    env.run(until=env.now + 120.0)
    assert dispatcher.monitors["cell-a"].state == "HEALTHY"
    assert dispatcher.counters["double_executions"] == 0
    assert intent.completions == 1
    # The orphan was fenced (either pre-recovery preempt or the
    # recovery fence), so cell-a runs nothing to completion.
    assert cell_a.running_job_ids() == []
    assert dispatcher.lost_intents() == []


def test_committed_gpus_return_to_zero_when_work_drains():
    env, cells, dispatcher = make_federation()
    ids = [submit(env, dispatcher, make_manifest(f"job-{n}"))
           for n in range(4)]
    for intent_id in ids:
        assert wait_state(env, intent_of(dispatcher, intent_id),
                          st.COMPLETED, deadline=10000)
    state = dispatcher.end_state()
    assert all(v == 0 for v in state["committed"].values())
    assert dispatcher.counters["completed"] == 4


def test_close_drains_the_intent_log():
    env, cells, dispatcher = make_federation()
    intent_id = submit(env, dispatcher, make_manifest())
    assert wait_state(env, intent_of(dispatcher, intent_id), st.COMPLETED)
    drained = dispatcher.close()
    env.run(until=env.now + 30.0)
    assert drained.triggered
    assert dispatcher.intent_log.pending == 0
    assert dispatcher.lost_intents() == []
