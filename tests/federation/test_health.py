"""Unit tests for cell health classification (HEALTHY/BROWNOUT/BLACKOUT).

The monitor is exercised against a scripted fake cell so each
classification rule is pinned in isolation from platform behaviour."""

from repro.errors import CellUnavailableError
from repro.federation import (
    BLACKOUT,
    BROWNOUT,
    CellHealthMonitor,
    FederationBus,
    HEALTHY,
    HealthConfig,
)
from repro.resilience import CircuitBreaker
from repro.sim import Environment, RngRegistry


class FakeCell:
    """Scripted probe target: latency and reachability are test knobs."""

    def __init__(self, env, name="cell-x"):
        self.env = env
        self.name = name
        self.breaker = CircuitBreaker(env, failure_threshold=3,
                                      reset_timeout_s=20.0, name=name)
        self.dark = False
        self.probe_latency_s = 0.01

    def probe(self, deadline_s):
        if self.dark:
            raise CellUnavailableError(f"cell {self.name!r} is dark")

        def run():
            yield self.env.timeout(self.probe_latency_s)
            return "ok"

        return self.env.process(run(), name="fake-probe")


def make_monitor(seed=0, config=None):
    env = Environment()
    bus = FederationBus(env, RngRegistry(seed))
    cell = FakeCell(env)
    bus.register(cell.name)
    transitions = []
    monitor = CellHealthMonitor(
        env, bus, cell,
        config=config or HealthConfig(),
        on_transition=lambda c, old, new: transitions.append((old, new)),
        monitor_name=f"monitor:{cell.name}")
    return env, cell, monitor, transitions


def test_healthy_cell_stays_healthy():
    env, cell, monitor, transitions = make_monitor()
    env.run(until=60.0)
    assert monitor.state == HEALTHY
    assert transitions == []
    assert monitor.probes_failed == 0
    assert monitor.probes_sent > 0


def test_three_consecutive_failures_classify_blackout():
    env, cell, monitor, transitions = make_monitor()
    env.run(until=12.0)  # a couple of healthy probes first
    cell.dark = True
    env.run(until=40.0)
    assert monitor.state == BLACKOUT
    assert transitions == [(HEALTHY, BLACKOUT)]
    # The breaker saw the same failures the classifier did.
    assert cell.breaker.state == "open"


def test_two_failures_are_not_a_blackout():
    cfg = HealthConfig(probe_interval_s=5.0, blackout_failures=3)
    env, cell, monitor, transitions = make_monitor(config=cfg)
    cell.dark = True
    env.run(until=11.0)  # exactly two probes fire (t=5, t=10)
    assert monitor.probes_failed == 2
    assert monitor.state == HEALTHY
    cell.dark = False
    env.run(until=30.0)
    # The streak was broken before reaching the threshold.
    assert monitor.state == HEALTHY
    assert transitions == []


def test_slow_probes_classify_brownout_then_recover():
    cfg = HealthConfig(probe_interval_s=5.0, probe_timeout_s=3.0,
                       brownout_latency_s=0.5, brownout_probes=3,
                       window=6, recover_probes=3)
    env, cell, monitor, transitions = make_monitor(config=cfg)
    env.run(until=11.0)
    cell.probe_latency_s = 1.0  # successful but slow
    env.run(until=40.0)
    assert monitor.state == BROWNOUT
    assert (HEALTHY, BROWNOUT) in transitions
    cell.probe_latency_s = 0.01
    env.run(until=80.0)
    # Hysteresis: three consecutive fast successes recover the cell.
    assert monitor.state == HEALTHY
    assert transitions[-1] == (BROWNOUT, HEALTHY)


def test_failures_do_not_feed_the_brownout_window():
    """Outright failures drive the blackout counter, never the latency
    window: two failures plus two slow probes must not read as a
    3-of-6 brownout."""
    cfg = HealthConfig(probe_interval_s=5.0, brownout_latency_s=0.5,
                       brownout_probes=3, blackout_failures=3)
    env, cell, monitor, transitions = make_monitor(config=cfg)
    cell.dark = True
    env.run(until=11.0)  # two failures
    cell.dark = False
    cell.probe_latency_s = 1.0
    env.run(until=21.0)  # two slow successes
    assert monitor.state == HEALTHY
    cell.probe_latency_s = 0.01
    env.run(until=60.0)
    assert monitor.state == HEALTHY
    assert transitions == []


def test_blackout_recovers_through_fast_probes():
    cfg = HealthConfig(probe_interval_s=5.0, recover_probes=3)
    env, cell, monitor, transitions = make_monitor(config=cfg)
    cell.dark = True
    env.run(until=40.0)
    assert monitor.state == BLACKOUT
    cell.dark = False
    env.run(until=100.0)
    assert monitor.state == HEALTHY
    assert transitions == [(HEALTHY, BLACKOUT), (BLACKOUT, HEALTHY)]


def test_stop_halts_probing():
    env, cell, monitor, _transitions = make_monitor()
    env.run(until=12.0)
    sent = monitor.probes_sent
    monitor.stop()
    env.run(until=60.0)
    assert monitor.probes_sent == sent
