"""Unit tests for the deterministic Mailbox merge and the FederationBus."""

import pytest

from repro.errors import CellUnavailableError, SimulationError
from repro.federation import FederationBus
from repro.sim import Environment, RngRegistry
from repro.sim.mailbox import Mailbox


# -- Mailbox ---------------------------------------------------------------


def test_same_instant_puts_merge_in_key_order_not_put_order():
    env = Environment()
    mailbox = Mailbox(env)
    got = []

    def getter():
        while len(got) < 3:
            item = yield mailbox.get()
            got.append(item)

    env.process(getter())
    # Puts in deliberately scrambled key order, all at t=0.
    mailbox.put("from-b", key=("b", 0))
    mailbox.put("from-a-second", key=("a", 1))
    mailbox.put("from-a-first", key=("a", 0))
    env.run(until=1.0)
    assert got == ["from-a-first", "from-a-second", "from-b"]


def test_items_invisible_until_the_instant_settles():
    env = Environment()
    mailbox = Mailbox(env)
    mailbox.put("x", key=("a", 0))
    # Not yet settled (no kernel step has run): a getter at this exact
    # point must still see the canonical merge, not the raw put.
    assert len(mailbox) == 1
    got = env.run_until_complete(env.process(iter_get(env, mailbox)),
                                 limit=1.0)
    assert got == "x"


def iter_get(env, mailbox):
    item = yield mailbox.get()
    return item


def test_duplicate_merge_key_rejected():
    env = Environment()
    mailbox = Mailbox(env)
    mailbox.put("x", key=("a", 0))
    with pytest.raises(SimulationError):
        mailbox.put("y", key=("a", 0))


# -- FederationBus ---------------------------------------------------------


def make_bus(seed=0):
    env = Environment()
    bus = FederationBus(env, RngRegistry(seed))
    return env, bus


def test_bus_latency_is_strictly_positive_and_fixed_per_link():
    env, bus = make_bus()
    first = bus.link_latency_s("a", "b")
    assert first > 0.0
    assert bus.link_latency_s("a", "b") == first
    # The reply leg is its own link with its own (positive) latency.
    assert bus.link_latency_s("b", "a") > 0.0


def test_bus_latency_independent_of_first_use_order():
    env1, bus1 = make_bus()
    env2, bus2 = make_bus()
    lat_ab_1 = bus1.link_latency_s("a", "b")
    bus2.link_latency_s("x", "y")  # touch another link first
    assert bus2.link_latency_s("a", "b") == lat_ab_1


def test_call_round_trips_and_pays_latency():
    env, bus = make_bus()
    bus.register("svc")

    def flow():
        result = yield bus.call("client", "svc", lambda: 41 + 1)
        return result, env.now

    result, when = env.run_until_complete(env.process(flow()), limit=5)
    assert result == 42
    assert when >= (bus.link_latency_s("client", "svc")
                    + bus.link_latency_s("svc", "client"))
    assert bus.stats.messages == 1
    assert bus.stats.replies == 1


def test_call_propagates_action_failure():
    env, bus = make_bus()
    bus.register("svc")

    def boom():
        raise CellUnavailableError("dark")

    def flow():
        return (yield bus.call("client", "svc", boom))

    with pytest.raises(CellUnavailableError):
        env.run_until_complete(env.process(flow()), limit=5)
    assert bus.stats.failures == 1


def test_one_way_send_runs_at_destination():
    env, bus = make_bus()
    bus.register("svc")
    seen = []
    bus.send("client", "svc", lambda: seen.append(env.now))
    assert seen == []  # nothing runs before the link latency elapses
    env.run(until=1.0)
    assert len(seen) == 1 and seen[0] > 0.0


def test_destination_drains_serially_in_sender_seq_order():
    """Two same-instant sends from one sender arrive in seq order and
    their handlers never interleave."""
    env, bus = make_bus()
    bus.register("svc")
    order = []
    bus.send("client", "svc", lambda: order.append("first"))
    bus.send("client", "svc", lambda: order.append("second"))
    env.run(until=1.0)
    assert order == ["first", "second"]


def test_unknown_destination_rejected():
    env, bus = make_bus()
    with pytest.raises(SimulationError):
        bus.send("client", "nowhere", lambda: None)
