"""Shared fixtures for kube tests."""

import pytest

from repro.docker import Image
from repro.kube import (
    Cluster,
    ContainerSpec,
    NodeCapacity,
    ObjectMeta,
    Pod,
    PodSpec,
    ResourceRequest,
    SchedulerConfig,
)
from repro.sim import Environment, RngRegistry

LEARNER_IMAGE = Image("learner", framework="tensorflow", size_bytes=1e6)


def make_cluster(policy="pack", gang=False, nodes=2, gpus_per_node=4,
                 gpu_type="K80", seed=0, config_kwargs=None,
                 **cluster_kwargs):
    env = Environment()
    config = SchedulerConfig(policy=policy, gang=gang,
                             **(config_kwargs or {}))
    cluster = Cluster(env, RngRegistry(seed), config, **cluster_kwargs)
    cluster.push_image(LEARNER_IMAGE)
    cluster.add_nodes(nodes, NodeCapacity(cpus=32, memory_gb=256,
                                          gpus=gpus_per_node,
                                          gpu_type=gpu_type))
    return env, cluster


def sleep_workload(env, duration, exit_code=0):
    def workload(container):
        yield env.timeout(duration)
        return exit_code

    return workload


def make_pod(env, name, gpus=1, cpus=4.0, duration=100.0, exit_code=0,
             gang_name=None, gang_size=1, labels=None, workload=None,
             gpu_type=None, volume_claims=None):
    spec = PodSpec(
        containers=[ContainerSpec("main", "learner:latest",
                                  workload or sleep_workload(
                                      env, duration, exit_code))],
        resources=ResourceRequest(cpus=cpus, memory_gb=8, gpus=gpus,
                                  gpu_type=gpu_type),
        gang_name=gang_name, gang_size=gang_size,
        volume_claims=volume_claims or [])
    meta = ObjectMeta(name=name, labels=labels or {"type": "learner"})
    return Pod(meta=meta, spec=spec)


@pytest.fixture
def pack_cluster():
    return make_cluster(policy="pack")


@pytest.fixture
def spread_cluster():
    return make_cluster(policy="spread")
