"""Unit tests for the KubeAPI object store and watch fan-out."""

import pytest

from repro.errors import ConflictError, ObjectNotFoundError
from repro.kube import KubeAPI, ObjectMeta, Pod, PodSpec
from repro.kube.objects import Node, NodeCapacity
from repro.sim import Environment


@pytest.fixture
def api():
    return KubeAPI(Environment())


def pod(name):
    return Pod(meta=ObjectMeta(name=name), spec=PodSpec())


def test_create_and_get(api):
    api.create_pod(pod("a"))
    assert api.get_pod("a").name == "a"


def test_duplicate_create_conflicts(api):
    api.create_pod(pod("a"))
    with pytest.raises(ConflictError):
        api.create_pod(pod("a"))


def test_get_missing_raises(api):
    with pytest.raises(ObjectNotFoundError):
        api.get_pod("ghost")
    assert api.try_get_pod("ghost") is None


def test_delete_missing_raises(api):
    with pytest.raises(ObjectNotFoundError):
        api.delete_pod("ghost")


def test_subscribe_receives_lifecycle(api):
    events = []
    api.subscribe("pods", lambda verb, obj: events.append((verb,
                                                           obj.name)))
    api.create_pod(pod("a"))
    api.update_pod(api.get_pod("a"))
    api.delete_pod("a")
    assert events == [("ADDED", "a"), ("MODIFIED", "a"), ("DELETED", "a")]


def test_mark_for_deletion_is_idempotent(api):
    api.create_pod(pod("a"))
    modified = []
    api.subscribe("pods", lambda verb, obj: modified.append(verb))
    first = api.mark_pod_for_deletion("a")
    second = api.mark_pod_for_deletion("a")
    assert first is second
    assert modified.count("MODIFIED") == 1  # only the first mark notifies


def test_mark_missing_pod_returns_none(api):
    assert api.mark_pod_for_deletion("ghost") is None


def test_bind_deleting_pod_conflicts(api):
    api.create_pod(pod("a"))
    api.mark_pod_for_deletion("a")
    with pytest.raises(ConflictError):
        api.bind_pod(api.get_pod("a"), "node-1")


def test_list_pods_filters(api):
    learner = pod("learner-0")
    learner.meta.owner = "uid-x"
    learner.phase = "Running"
    learner.node_name = "n1"
    api.create_pod(learner)
    api.create_pod(pod("other"))
    assert [p.name for p in api.list_pods(owner="uid-x")] == ["learner-0"]
    assert [p.name for p in api.list_pods(phase="Running")] == \
        ["learner-0"]
    assert [p.name for p in api.list_pods(node_name="n1")] == \
        ["learner-0"]


def test_pod_phase_counts(api):
    running = pod("r")
    running.phase = "Running"
    api.create_pod(running)
    api.create_pod(pod("p"))
    counts = api.pod_phase_counts()
    assert counts["Running"] == 1
    assert counts["Pending"] == 1


def test_node_store(api):
    node = Node(meta=ObjectMeta(name="n1"),
                capacity=NodeCapacity(cpus=8, memory_gb=32))
    api.create_node(node)
    assert api.get_node("n1") is node
    assert api.list_nodes() == [node]
