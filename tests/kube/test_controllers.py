"""Tests for ReplicaSet / StatefulSet / Job / Deployment controllers."""


from repro.kube import (
    Deployment,
    KubeJob,
    ObjectMeta,
    PodTemplate,
    RUNNING,
    ReplicaSet,
    ResourceRequest,
    SUCCEEDED,
    StatefulSet,
)
from repro.kube.objects import ContainerSpec

from tests.kube.conftest import make_cluster, sleep_workload


def template(env, duration=1000, exit_code=0, cpus=1.0, gpus=0,
             restart_policy="Never", labels=None):
    return PodTemplate(
        containers=[ContainerSpec("main", "learner:latest",
                                  sleep_workload(env, duration, exit_code))],
        resources=ResourceRequest(cpus=cpus, memory_gb=2, gpus=gpus,
                                  gpu_type="K80" if gpus else None),
        restart_policy=restart_policy,
        labels=labels or {"type": "learner"})


def test_replicaset_creates_replicas():
    env, cluster = make_cluster()
    rs = ReplicaSet(meta=ObjectMeta(name="api"), replicas=3,
                    template=template(env))
    cluster.api.create_replicaset(rs)
    env.run(until=10)
    pods = cluster.api.list_pods(owner=rs.meta.uid)
    assert len(pods) == 3
    assert all(p.phase == RUNNING for p in pods)


def test_replicaset_replaces_deleted_pod():
    env, cluster = make_cluster()
    rs = ReplicaSet(meta=ObjectMeta(name="api"), replicas=2,
                    template=template(env))
    cluster.api.create_replicaset(rs)
    env.run(until=10)
    victim = cluster.api.list_pods(owner=rs.meta.uid)[0]
    cluster.delete_pod(victim.name)
    env.run(until=30)
    pods = [p for p in cluster.api.list_pods(owner=rs.meta.uid)
            if not p.meta.deletion_requested]
    assert len(pods) == 2
    assert all(p.phase == RUNNING for p in pods)


def test_replicaset_deletion_removes_pods():
    env, cluster = make_cluster()
    rs = ReplicaSet(meta=ObjectMeta(name="api"), replicas=2,
                    template=template(env))
    cluster.api.create_replicaset(rs)
    env.run(until=10)
    cluster.api.delete_replicaset("api")
    env.run(until=30)
    assert cluster.api.list_pods(owner=rs.meta.uid) == []


def test_statefulset_pods_have_stable_identities():
    env, cluster = make_cluster()
    ss = StatefulSet(meta=ObjectMeta(name="learner"), replicas=3,
                     template=template(env), gang=False)
    cluster.api.create_statefulset(ss)
    env.run(until=10)
    names = sorted(p.name for p in cluster.api.list_pods(owner=ss.meta.uid))
    assert names == ["learner-0", "learner-1", "learner-2"]


def test_statefulset_recreates_failed_pod_with_same_name():
    env, cluster = make_cluster()
    ss = StatefulSet(meta=ObjectMeta(name="learner"), replicas=2,
                     template=template(env, duration=5, exit_code=1),
                     gang=False)
    ss.template.restart_policy = "Never"
    cluster.api.create_statefulset(ss)
    env.run(until=4)
    first_uid = cluster.api.get_pod("learner-0").meta.uid
    # Advance until the replacement exists (there is a short window between
    # deletion of the failed pod and creation of its successor).
    replacement = None
    deadline = 60
    while env.now < deadline:
        env.run(until=env.now + 1)
        replacement = cluster.api.try_get_pod("learner-0")
        if replacement is not None and replacement.meta.uid != first_uid:
            break
    assert replacement is not None
    assert replacement.meta.uid != first_uid


def test_statefulset_gang_metadata_propagates():
    env, cluster = make_cluster(gang=True)
    ss = StatefulSet(meta=ObjectMeta(name="job1-learner"), replicas=2,
                     template=template(env, gpus=1), gang=True)
    cluster.api.create_statefulset(ss)
    env.run(until=10)
    pods = cluster.api.list_pods(owner=ss.meta.uid)
    assert all(p.spec.gang_name == "job1-learner" for p in pods)
    assert all(p.spec.gang_size == 2 for p in pods)
    assert all(p.phase == RUNNING for p in pods)


def test_job_runs_to_completion():
    env, cluster = make_cluster()
    job = KubeJob(meta=ObjectMeta(name="guardian-1"),
                  template=template(env, duration=5))
    cluster.api.create_job(job)
    env.run(until=30)
    assert job.succeeded == 1


def test_job_retries_on_failure_until_success():
    env, cluster = make_cluster()
    attempts = []

    def flaky(container):
        attempts.append(env.now)
        yield env.timeout(2)
        return 1 if len(attempts) < 3 else 0

    tmpl = template(env)
    tmpl.containers = [ContainerSpec("main", "learner:latest", flaky)]
    job = KubeJob(meta=ObjectMeta(name="guardian-2"), template=tmpl,
                  backoff_limit=5)
    cluster.api.create_job(job)
    env.run(until=100)
    assert len(attempts) == 3
    assert job.succeeded == 1
    assert job.failed_attempts == 2


def test_job_gives_up_after_backoff_limit():
    env, cluster = make_cluster()
    job = KubeJob(meta=ObjectMeta(name="doomed"),
                  template=template(env, duration=2, exit_code=1),
                  backoff_limit=2)
    cluster.api.create_job(job)
    env.run(until=200)
    assert job.succeeded == 0
    assert job.failed_attempts == 3  # initial + 2 retries


def test_deployment_maintains_replicas():
    env, cluster = make_cluster()
    deployment = Deployment(meta=ObjectMeta(name="helper"), replicas=2,
                            template=template(env))
    cluster.api.create_deployment(deployment)
    env.run(until=10)
    pods = cluster.api.list_pods(owner=deployment.meta.uid)
    assert len(pods) == 2
    cluster.delete_pod(pods[0].name)
    env.run(until=30)
    live = [p for p in cluster.api.list_pods(owner=deployment.meta.uid)
            if not p.meta.deletion_requested]
    assert len(live) == 2


def test_successful_set_pod_not_replaced():
    env, cluster = make_cluster()
    rs = ReplicaSet(meta=ObjectMeta(name="oneshot"), replicas=1,
                    template=template(env, duration=5, exit_code=0))
    cluster.api.create_replicaset(rs)
    env.run(until=50)
    pods = cluster.api.list_pods(owner=rs.meta.uid)
    assert len(pods) == 1
    assert pods[0].phase == SUCCEEDED
