"""Tests for maintenance drains."""


from tests.kube.conftest import make_cluster, make_pod


def test_drain_evicts_and_cordons():
    env, cluster = make_cluster(nodes=2)
    pods = [make_pod(env, f"p{i}", gpus=1, duration=10_000)
            for i in range(3)]
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run(until=10)
    target = pods[0].node_name
    on_target = [p.name for p in pods if p.node_name == target]
    evicted = cluster.drain_node(target)
    assert sorted(evicted) == sorted(on_target)
    env.run(until=env.now + 30)
    for name in on_target:
        assert not cluster.api.exists("pods", name)
    assert not cluster.api.get_node(target).is_ready


def test_drained_node_receives_no_new_pods():
    env, cluster = make_cluster(nodes=2)
    names = sorted(cluster.kubelets)
    cluster.drain_node(names[0])
    pods = [make_pod(env, f"n{i}", gpus=1) for i in range(3)]
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run(until=10)
    assert all(p.node_name == names[1] for p in pods)


def test_uncordon_after_drain_restores_scheduling():
    env, cluster = make_cluster(nodes=1)
    name = sorted(cluster.kubelets)[0]
    cluster.drain_node(name)
    pod = make_pod(env, "waiting", gpus=1)
    cluster.api.create_pod(pod)
    env.run(until=5)
    assert pod.phase == "Pending"
    cluster.uncordon(name)
    env.run(until=15)
    assert pod.phase == "Running"


def test_drain_releases_resources():
    env, cluster = make_cluster(nodes=1)
    pod = make_pod(env, "p", gpus=4, duration=10_000)
    cluster.api.create_pod(pod)
    env.run(until=10)
    cluster.drain_node(pod.node_name)
    env.run(until=env.now + 30)
    assert cluster.allocated_gpus() == 0


def test_drain_statefulset_pod_moves_to_other_node():
    from repro.kube import ObjectMeta, PodTemplate, ResourceRequest, \
        StatefulSet
    from repro.kube.objects import ContainerSpec
    from tests.kube.conftest import sleep_workload

    env, cluster = make_cluster(nodes=2)
    ss = StatefulSet(
        meta=ObjectMeta(name="svc"), replicas=1,
        template=PodTemplate(
            containers=[ContainerSpec("m", "learner:latest",
                                      sleep_workload(env, 10_000))],
            resources=ResourceRequest(cpus=1, memory_gb=2, gpus=1,
                                      gpu_type="K80")),
        gang=False)
    cluster.api.create_statefulset(ss)
    env.run(until=10)
    original = cluster.api.get_pod("svc-0")
    drained = original.node_name
    cluster.drain_node(drained)
    env.run(until=env.now + 60)
    replacement = cluster.api.get_pod("svc-0")
    assert replacement.meta.uid != original.meta.uid
    assert replacement.node_name != drained
    assert replacement.phase == "Running"
