"""Tests for FailedScheduling event emission (Table 8 taxonomy)."""


from repro.kube.events import (
    REASON_NO_NODES,
    REASON_POD_NOT_FOUND,
    REASON_PVC_NOT_FOUND,
    REASON_SKIP_DELETING,
)

from tests.kube.conftest import make_cluster, make_pod


def failed_reasons(cluster):
    return [e.reason for e in cluster.api.event_log.failed_scheduling()]


def test_no_nodes_event_on_resource_exhaustion():
    env, cluster = make_cluster(nodes=1, gpus_per_node=2)
    blocker = make_pod(env, "blocker", gpus=2, duration=10_000)
    starved = make_pod(env, "starved", gpus=2, duration=10)
    cluster.api.create_pod(blocker)
    env.run(until=5)
    cluster.api.create_pod(starved)
    env.run(until=10)
    reasons = failed_reasons(cluster)
    assert REASON_NO_NODES in reasons
    events = cluster.api.event_log.failed_scheduling()
    gpu_event = next(e for e in events if e.object_name == "starved")
    assert "nvidia-gpu" in gpu_event.message


def test_no_nodes_message_includes_unschedulable_predicate():
    env, cluster = make_cluster(nodes=1, gpus_per_node=2,
                                node_detection_latency_s=1.0,
                                pod_eviction_timeout_s=1.0)
    cluster.fail_node(sorted(cluster.kubelets)[0])
    env.run(until=5)
    pod = make_pod(env, "p", gpus=1)
    cluster.api.create_pod(pod)
    env.run(until=10)
    events = [e for e in cluster.api.event_log.failed_scheduling()
              if e.object_name == "p"]
    assert events
    assert "NodeUnschedulable" in events[0].message


def test_skip_deleting_event():
    env, cluster = make_cluster(nodes=1, gpus_per_node=1)
    blocker = make_pod(env, "blocker", gpus=1, duration=10_000)
    victim = make_pod(env, "victim", gpus=1)
    cluster.api.create_pod(blocker)
    env.run(until=5)
    cluster.api.create_pod(victim)
    # Mark for deletion before the scheduler can ever place it; the event
    # fires once the scheduler's informer has observed the deletion.
    cluster.api.mark_pod_for_deletion("victim")
    cluster.scheduler.kick()
    env.run(until=8)
    cluster.scheduler.kick()  # re-attempt after the staleness window
    env.run(until=10)
    assert REASON_SKIP_DELETING in failed_reasons(cluster)


def test_pod_not_found_event():
    env, cluster = make_cluster(nodes=1, gpus_per_node=1)
    blocker = make_pod(env, "blocker", gpus=1, duration=10_000)
    ghost = make_pod(env, "ghost", gpus=1)
    cluster.api.create_pod(blocker)
    env.run(until=5)
    cluster.api.create_pod(ghost)
    cluster.api.delete_pod("ghost")  # hard delete: scheduler cache is stale
    cluster.scheduler.kick()
    env.run(until=10)
    assert REASON_POD_NOT_FOUND in failed_reasons(cluster)


def test_pvc_not_found_event():
    env, cluster = make_cluster()
    pod = make_pod(env, "claimed", gpus=1, volume_claims=["missing-claim"])
    cluster.api.create_pod(pod)
    env.run(until=5)
    assert REASON_PVC_NOT_FOUND in failed_reasons(cluster)


def test_race_probabilities_emit_timeout_and_assume_events():
    from repro.kube.events import REASON_ASSUME_FAILED, REASON_TIMEOUT
    env, cluster = make_cluster(nodes=1, gpus_per_node=1)
    cluster.scheduler.config.timeout_race_probability = 0.5
    cluster.scheduler.config.assume_race_probability = 0.5
    for i in range(20):
        cluster.api.create_pod(make_pod(env, f"p{i}", gpus=1, duration=1))
    env.run(until=300)
    reasons = set(failed_reasons(cluster))
    assert REASON_TIMEOUT in reasons
    assert REASON_ASSUME_FAILED in reasons


def test_scheduled_event_recorded():
    from repro.kube.events import SCHEDULED
    env, cluster = make_cluster()
    cluster.api.create_pod(make_pod(env, "ok", gpus=1, duration=5))
    env.run(until=10)
    scheduled = cluster.api.event_log.of_kind(SCHEDULED)
    assert len(scheduled) == 1
    assert scheduled[0].pod_type == "learner"
