"""Regression tests: gang-member replacement rejoin, and terminal-pod GC."""


from repro.kube import RUNNING, SUCCEEDED

from tests.kube.conftest import make_cluster, make_pod


def test_replacement_gang_member_schedules_among_running_peers():
    """A gang member lost to a node failure must not wait for peers that
    are already running (regression: it deadlocked forever)."""
    from repro.kube import ObjectMeta, PodTemplate, ResourceRequest, \
        StatefulSet
    from repro.kube.objects import ContainerSpec
    from tests.kube.conftest import sleep_workload

    env, cluster = make_cluster(gang=True, nodes=3, gpus_per_node=2,
                                node_detection_latency_s=5.0,
                                pod_eviction_timeout_s=5.0)
    # Each learner needs a whole node's GPUs: the two members are forced
    # onto different nodes, so a node failure takes exactly one of them.
    ss = StatefulSet(
        meta=ObjectMeta(name="jobA"), replicas=2,
        template=PodTemplate(
            containers=[ContainerSpec("m", "learner:latest",
                                      sleep_workload(env, 50_000))],
            resources=ResourceRequest(cpus=2, memory_gb=8, gpus=2,
                                      gpu_type="K80"),
            labels={"type": "learner"}),
        gang=True)
    cluster.api.create_statefulset(ss)
    env.run(until=20)
    members = [cluster.api.get_pod(f"jobA-{i}") for i in range(2)]
    assert all(p.phase == RUNNING for p in members)
    assert members[0].node_name != members[1].node_name
    dead_node = members[0].node_name
    cluster.fail_node(dead_node)
    env.run(until=120)
    # Member 0 was evicted and recreated; member 1 kept running: the
    # replacement must schedule without waiting for a full fresh gang.
    current = [cluster.api.try_get_pod(f"jobA-{i}") for i in range(2)]
    assert current[1] is not None and current[1].phase == RUNNING
    assert current[0] is not None and current[0].phase == RUNNING
    assert current[0].node_name != dead_node


def test_terminal_pods_garbage_collected_after_ttl():
    env, cluster = make_cluster(nodes=1)
    cluster.terminal_pod_gc_ttl_s = 100.0
    pod = make_pod(env, "done", gpus=1, duration=10)
    cluster.api.create_pod(pod)
    env.run(until=50)
    assert pod.phase == SUCCEEDED
    assert cluster.api.exists("pods", "done")
    env.run(until=200)
    assert not cluster.api.exists("pods", "done")
    causes = [c for _t, n, _ty, c in cluster.deletion_log if n == "done"]
    assert causes == ["gc"]


def test_gc_disabled_when_ttl_zero():
    env, cluster = make_cluster(nodes=1)
    cluster.terminal_pod_gc_ttl_s = 0
    pod = make_pod(env, "keeper", gpus=1, duration=10)
    cluster.api.create_pod(pod)
    env.run(until=2000)
    assert cluster.api.exists("pods", "keeper")


def test_gc_does_not_collect_reused_name():
    """GC scheduled for an old pod must not delete its same-named
    successor."""
    env, cluster = make_cluster(nodes=1)
    cluster.terminal_pod_gc_ttl_s = 50.0
    first = make_pod(env, "reused", gpus=1, duration=10)
    cluster.api.create_pod(first)
    env.run(until=30)  # first is terminal; GC armed for t~=80
    cluster.api.delete_pod("reused")  # removed early (manual)
    second = make_pod(env, "reused", gpus=1, duration=10_000)
    cluster.api.create_pod(second)
    env.run(until=200)
    # The successor survives the first pod's GC timer.
    assert cluster.api.exists("pods", "reused")
    assert cluster.api.get_pod("reused").meta.uid == second.meta.uid


def test_eviction_of_terminal_pod_not_counted_as_node_failure():
    env, cluster = make_cluster(nodes=1, node_detection_latency_s=5.0,
                                pod_eviction_timeout_s=5.0)
    cluster.terminal_pod_gc_ttl_s = 10_000.0  # keep terminal pod around
    done = make_pod(env, "finished", gpus=1, duration=10)
    cluster.api.create_pod(done)
    env.run(until=50)
    assert done.phase == SUCCEEDED
    cluster.fail_node(sorted(cluster.kubelets)[0])
    env.run(until=100)
    causes = {n: c for _t, n, _ty, c in cluster.deletion_log}
    assert causes.get("finished") == "gc"
