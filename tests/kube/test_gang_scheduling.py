"""Tests for gang scheduling with BSA (Section 3.5 of the paper)."""

import random


from repro.kube import (
    NodeAllocation,
    NodeCapacity,
    ObjectMeta,
    PENDING,
    Pod,
    PodSpec,
    RUNNING,
    ResourceRequest,
)
from repro.kube.scheduling import bsa_place

from tests.kube.conftest import make_cluster, make_pod


def make_gang(env, cluster, name, learners, gpus_per_learner,
              duration=10_000):
    pods = []
    for i in range(learners):
        pod = make_pod(env, f"{name}-{i}", gpus=gpus_per_learner,
                       duration=duration, gang_name=name,
                       gang_size=learners)
        pods.append(pod)
        cluster.api.create_pod(pod)
    return pods


def test_gang_schedules_all_or_nothing():
    env, cluster = make_cluster(gang=True, nodes=2, gpus_per_node=2)
    # Gang needs 4 GPUs; cluster has 4: fits.
    gang = make_gang(env, cluster, "jobA", learners=2, gpus_per_learner=2)
    env.run(until=10)
    assert all(p.phase == RUNNING for p in gang)


def test_oversized_gang_fully_queued():
    env, cluster = make_cluster(gang=True, nodes=2, gpus_per_node=2)
    gang = make_gang(env, cluster, "too-big", learners=3,
                     gpus_per_learner=2)
    env.run(until=10)
    assert all(p.phase == PENDING for p in gang)
    assert all(p.node_name is None for p in gang)


def test_partial_gang_waits_for_remaining_members():
    env, cluster = make_cluster(gang=True, nodes=2, gpus_per_node=2)
    first = make_pod(env, "latejob-0", gpus=1, gang_name="latejob",
                     gang_size=2)
    cluster.api.create_pod(first)
    env.run(until=5)
    assert first.phase == PENDING  # gang incomplete: must not schedule
    second = make_pod(env, "latejob-1", gpus=1, gang_name="latejob",
                      gang_size=2)
    cluster.api.create_pod(second)
    env.run(until=10)
    assert first.phase == RUNNING
    assert second.phase == RUNNING


def test_no_temporary_deadlock_with_gang_scheduler():
    """Paper Section 3.5: 4 sync jobs with 2 learners x 2 GPUs on a
    4-machine, 2-GPU cluster.  With gang scheduling exactly 2 jobs run and
    2 queue; no learner holds a GPU while its peers wait."""
    env, cluster = make_cluster(gang=True, nodes=4, gpus_per_node=2)
    gangs = {f"job{j}": make_gang(env, cluster, f"job{j}", learners=2,
                                  gpus_per_learner=2) for j in range(4)}
    env.run(until=20)
    fully_running = sum(
        1 for pods in gangs.values()
        if all(p.phase == RUNNING for p in pods))
    fully_pending = sum(
        1 for pods in gangs.values()
        if all(p.phase == PENDING for p in pods))
    assert fully_running == 2
    assert fully_pending == 2
    assert cluster.idle_gpus_on_running_pods() == 0


def test_without_gang_scheduler_deadlocks_possible():
    """Individual pod scheduling can leave jobs partially placed, hoarding
    GPUs (the motivation for the gang scheduler)."""
    deadlocked_any = False
    for seed in range(5):
        env, cluster = make_cluster(gang=False, nodes=4, gpus_per_node=2,
                                    seed=seed)
        for j in range(4):
            make_gang(env, cluster, f"job{j}", learners=2,
                      gpus_per_learner=2)
        env.run(until=20)
        if cluster.idle_gpus_on_running_pods() > 0:
            deadlocked_any = True
            break
    assert deadlocked_any


def test_queued_gang_starts_when_resources_free():
    env, cluster = make_cluster(gang=True, nodes=2, gpus_per_node=2)
    running = make_gang(env, cluster, "first", learners=2,
                        gpus_per_learner=2, duration=50)
    queued = make_gang(env, cluster, "second", learners=2,
                       gpus_per_learner=2, duration=50)
    env.run(until=30)
    assert all(p.phase == RUNNING for p in running)
    assert all(p.phase == PENDING for p in queued)
    env.run(until=120)
    assert all(p.phase in (RUNNING, "Succeeded") for p in queued)


def test_largest_gang_first_on_simultaneous_arrival():
    env, cluster = make_cluster(gang=True, nodes=2, gpus_per_node=4)
    small = make_gang(env, cluster, "small", learners=1, gpus_per_learner=4)
    large = make_gang(env, cluster, "large", learners=2, gpus_per_learner=4)
    env.run(until=10)
    # Demand is 12 GPUs against 8: the larger gang wins the same-instant
    # FCFS tie-break (Section 3.6) and the small one queues.
    assert all(p.phase == RUNNING for p in large)
    assert all(p.phase == PENDING for p in small)


def test_largest_gang_wins_tiebreak_under_scarcity():
    env, cluster = make_cluster(gang=True, nodes=1, gpus_per_node=4)
    small = make_gang(env, cluster, "small", learners=1, gpus_per_learner=2)
    large = make_gang(env, cluster, "large", learners=2, gpus_per_learner=2)
    env.run(until=10)
    assert all(p.phase == RUNNING for p in large)
    assert all(p.phase == PENDING for p in small)


# -- BSA unit tests -------------------------------------------------------------


def _bsa_pod(name, gpus, gang="g"):
    return Pod(meta=ObjectMeta(name=name),
               spec=PodSpec(resources=ResourceRequest(
                   cpus=1, memory_gb=1, gpus=gpus, gpu_type="K80"),
                   gang_name=gang, gang_size=2))


def _allocations(free_gpus_by_node):
    allocations = {}
    for name, (total, free) in free_gpus_by_node.items():
        alloc = NodeAllocation(NodeCapacity(cpus=64, memory_gb=512,
                                            gpus=total, gpu_type="K80"))
        alloc.free_gpus = free
        allocations[name] = alloc
    return allocations


def test_bsa_places_feasible_gang():
    pods = [_bsa_pod("a", 2), _bsa_pod("b", 2)]
    allocations = _allocations({"n1": (4, 4), "n2": (4, 4)})
    eligible = {"a": ["n1", "n2"], "b": ["n1", "n2"]}
    result = bsa_place(pods, allocations, eligible, random.Random(0))
    assert result is not None
    assert set(result) == {"a", "b"}


def test_bsa_prefers_fewer_nodes():
    pods = [_bsa_pod("a", 1), _bsa_pod("b", 1)]
    allocations = _allocations({"n1": (4, 4), "n2": (4, 4)})
    eligible = {"a": ["n1", "n2"], "b": ["n1", "n2"]}
    result = bsa_place(pods, allocations, eligible, random.Random(0),
                       rounds=20)
    assert len(set(result.values())) == 1


def test_bsa_returns_none_when_infeasible():
    pods = [_bsa_pod("a", 4), _bsa_pod("b", 4)]
    allocations = _allocations({"n1": (4, 4), "n2": (4, 2)})
    eligible = {"a": ["n1", "n2"], "b": ["n1", "n2"]}
    result = bsa_place(pods, allocations, eligible, random.Random(0))
    assert result is None


def test_bsa_respects_eligibility():
    pods = [_bsa_pod("a", 1)]
    allocations = _allocations({"n1": (4, 4), "n2": (4, 4)})
    eligible = {"a": ["n2"]}
    result = bsa_place(pods, allocations, eligible, random.Random(0))
    assert result == {"a": "n2"}


def test_bsa_empty_gang_trivially_placed():
    assert bsa_place([], {}, {}, random.Random(0)) == {}


def test_bsa_biases_toward_packed_nodes():
    pods = [_bsa_pod("a", 1)]
    # n1 is nearly full (packed), n2 empty: pack bias should choose n1
    # almost always.
    allocations = _allocations({"n1": (4, 1), "n2": (4, 4)})
    eligible = {"a": ["n1", "n2"]}
    picks = [bsa_place(pods, allocations, eligible, random.Random(s),
                       rounds=1)["a"] for s in range(40)]
    assert picks.count("n1") > 25
