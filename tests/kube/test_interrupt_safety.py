"""Crash injection must never be swallowed by broad exception handlers.

Regression tests for the Interrupt-safety fixes flagged by
``repro.staticcheck`` (SAF001): an injected crash mid-image-pull used to
be caught by a broad ``except Exception`` and misreported as
ImagePullError; a crash against a running pod or container must likewise
surface as a kill, not vanish.
"""

from repro.docker import Container, Image
from repro.docker.runtime import SIGKILL_EXIT_CODE
from repro.kube import (
    ContainerSpec,
    FAILED,
    ObjectMeta,
    PENDING,
    Pod,
    PodSpec,
    RUNNING,
    ResourceRequest,
)
from repro.sim import Environment

from tests.kube.conftest import make_cluster, sleep_workload

#: 2.5e9 bytes at the registry's 2.5e8 B/s default = a 10 s pull window.
SLOW_IMAGE = Image("slowpull", framework="tensorflow", size_bytes=2.5e9)


def make_slow_pod(env, name="victim", duration=50.0):
    spec = PodSpec(
        containers=[ContainerSpec("main", "slowpull:latest",
                                  sleep_workload(env, duration))],
        resources=ResourceRequest(cpus=4, memory_gb=8, gpus=1))
    return Pod(meta=ObjectMeta(name=name, labels={"type": "learner"}),
               spec=spec)


def test_interrupt_mid_image_pull_fails_pod_instead_of_hanging():
    env, cluster = make_cluster()
    cluster.push_image(SLOW_IMAGE)
    pod = make_slow_pod(env)
    cluster.api.create_pod(pod)
    env.run(until=5)  # 1 s setup + 10 s pull: squarely mid-pull
    assert pod.phase == PENDING
    kubelet = cluster.kubelets[pod.node_name]

    assert kubelet.interrupt_pod(pod, cause="crash-injection")
    env.run(until=40)
    assert pod.phase == FAILED
    assert pod.termination_reason == "Interrupted"
    # Not misclassified as a registry problem (the pre-fix behavior).
    assert pod.termination_reason != "ImagePullError"
    # Resources released: the learner slot is reusable, nothing hangs.
    assert cluster.allocated_gpus() == 0


def test_interrupt_running_pod_kills_containers_and_fails_pod():
    env, cluster = make_cluster()
    cluster.push_image(SLOW_IMAGE)
    pod = make_slow_pod(env, duration=100.0)
    cluster.api.create_pod(pod)
    env.run(until=20)  # setup + pull complete, workload running
    assert pod.phase == RUNNING
    kubelet = cluster.kubelets[pod.node_name]
    containers = kubelet.containers_for(pod.name)
    assert containers

    assert kubelet.interrupt_pod(pod, cause="crash-injection")
    env.run(until=30)
    assert pod.phase == FAILED
    assert pod.termination_reason == "Interrupted"
    assert all(c.exit_code == SIGKILL_EXIT_CODE for c in containers)
    assert cluster.allocated_gpus() == 0


def test_interrupt_pod_without_live_process_reports_false():
    env, cluster = make_cluster()
    pod = make_slow_pod(env)
    kubelet = next(iter(cluster.kubelets.values()))
    assert kubelet.interrupt_pod(pod) is False


def test_container_runtime_interrupt_records_sigkill():
    env = Environment()
    image = Image("img", size_bytes=1e6)

    def workload(container):
        yield env.timeout(100)
        return 0

    container = Container(env, image, "c/main", workload)
    container.start()
    env.run(until=5)
    container._process.interrupt("crash-injection")
    env.run(until=10)
    assert container.state == "exited"
    assert container.exit_code == SIGKILL_EXIT_CODE
