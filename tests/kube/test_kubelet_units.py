"""Unit tests for kubelet edge cases."""


from repro.kube import FAILED, RUNNING

from tests.kube.conftest import make_cluster, make_pod


def test_missing_image_fails_pod():
    env, cluster = make_cluster()
    pod = make_pod(env, "noimg", gpus=1)
    pod.spec.containers[0].image = "ghost:latest"
    cluster.api.create_pod(pod)
    env.run(until=30)
    assert pod.phase == FAILED
    assert pod.termination_reason == "ImagePullError"
    # Resources were returned despite the pod never running.
    assert cluster.allocated_gpus() == 0


def test_pod_setup_annotation_delays_start():
    env, cluster = make_cluster()
    slow = make_pod(env, "slow", gpus=1, duration=10)
    slow.meta.annotations["pod-setup-seconds"] = "20"
    fast = make_pod(env, "fast", gpus=1, duration=10)
    fast.meta.annotations["pod-setup-seconds"] = "0.5"
    cluster.api.create_pod(slow)
    cluster.api.create_pod(fast)
    env.run(until=60)
    assert fast.started_at < slow.started_at
    assert slow.started_at - slow.scheduled_at >= 20


def test_first_pull_pays_image_transfer_cached_after():
    from repro.docker import Image
    env, cluster = make_cluster(nodes=1)
    cluster.push_image(Image("bigimage", size_bytes=2.5e9))
    first = make_pod(env, "first", gpus=1, duration=5)
    first.spec.containers[0].image = "bigimage:latest"
    first.meta.annotations["pod-setup-seconds"] = "0.1"
    cluster.api.create_pod(first)
    env.run(until=60)
    # 2.5 GB at 250 MB/s: ~10s pull before Running.
    assert first.started_at - first.scheduled_at >= 10
    second = make_pod(env, "second", gpus=1, duration=5)
    second.spec.containers[0].image = "bigimage:latest"
    second.meta.annotations["pod-setup-seconds"] = "0.1"
    cluster.api.create_pod(second)
    env.run(until=120)
    assert second.started_at - second.scheduled_at < 2.0


def test_restart_delay_paces_container_restarts():
    env, cluster = make_cluster()
    kubelet = next(iter(cluster.kubelets.values()))
    attempts = []

    def always_fails(container):
        attempts.append(env.now)
        yield env.timeout(1)
        return 1

    pod = make_pod(env, "crashloop", workload=always_fails)
    pod.spec.restart_policy = "OnFailure"
    cluster.api.create_pod(pod)
    env.run(until=35)
    assert len(attempts) >= 3
    gaps = [b - a for a, b in zip(attempts, attempts[1:])]
    # Each restart waits at least the restart delay.
    assert all(gap >= kubelet.restart_delay_s for gap in gaps)


def test_deletion_during_setup_aborts_start():
    env, cluster = make_cluster()
    pod = make_pod(env, "aborted", gpus=1, duration=100)
    pod.meta.annotations["pod-setup-seconds"] = "10"
    cluster.api.create_pod(pod)
    env.run(until=3)  # pod scheduled, still in setup
    cluster.delete_pod("aborted")
    env.run(until=60)
    assert not cluster.api.exists("pods", "aborted")
    assert cluster.allocated_gpus() == 0
    # It never reached Running.
    assert pod.started_at is None or pod.phase != RUNNING
