"""Unit tests for NetworkPolicy semantics (multi-tenant isolation)."""

import pytest

from repro.kube import NetworkPolicy, ObjectMeta, Pod, PodSpec


def pod_with_labels(name, **labels):
    return Pod(meta=ObjectMeta(name=name, labels=labels), spec=PodSpec())


@pytest.fixture
def policy():
    return NetworkPolicy(
        meta=ObjectMeta(name="job1-netpol"),
        pod_selector={"job": "job1"},
        allowed_peer_labels={"job": "job1"})


def test_applies_only_to_selected_pods(policy):
    mine = pod_with_labels("l0", job="job1", type="learner")
    other = pod_with_labels("x0", job="job2", type="learner")
    assert policy.applies_to(mine)
    assert not policy.applies_to(other)


def test_same_job_traffic_allowed(policy):
    a = pod_with_labels("l0", job="job1")
    b = pod_with_labels("l1", job="job1")
    assert policy.allows(a, b)
    assert policy.allows(b, a)


def test_cross_job_traffic_blocked(policy):
    mine = pod_with_labels("l0", job="job1")
    intruder = pod_with_labels("x0", job="job2")
    assert not policy.allows(intruder, mine)


def test_policy_ignores_unselected_destination(policy):
    intruder = pod_with_labels("x0", job="job2")
    unrelated = pod_with_labels("y0", job="job3")
    # The policy only guards job1's pods; other traffic is its own
    # policy's problem.
    assert policy.allows(intruder, unrelated)


def test_unlabelled_pod_cannot_reach_protected_pod(policy):
    anonymous = pod_with_labels("a0")
    mine = pod_with_labels("l0", job="job1")
    assert not policy.allows(anonymous, mine)
