"""Tests for node failure detection, eviction and recovery."""


from repro.kube import (
    ObjectMeta,
    PENDING,
    PodTemplate,
    RUNNING,
    ResourceRequest,
    StatefulSet,
)
from repro.kube.events import EVICTED, NODE_NOT_READY_EVENT
from repro.kube.objects import ContainerSpec

from tests.kube.conftest import make_cluster, make_pod, sleep_workload


def fast_failure_cluster(**kwargs):
    return make_cluster(node_detection_latency_s=5.0,
                        pod_eviction_timeout_s=5.0, **kwargs)


def test_node_failure_kills_containers_immediately():
    env, cluster = fast_failure_cluster()
    pod = make_pod(env, "p1", gpus=1, duration=10_000)
    cluster.api.create_pod(pod)
    env.run(until=10)
    node = pod.node_name
    cluster.fail_node(node)
    containers = cluster.kubelets[node].containers_for("p1")
    assert containers == []  # all containers torn down


def test_node_marked_not_ready_after_detection_latency():
    env, cluster = fast_failure_cluster()
    name = sorted(cluster.kubelets)[0]
    cluster.fail_node(name)
    env.run(until=3)
    assert cluster.api.get_node(name).condition == "Ready"
    env.run(until=8)
    assert cluster.api.get_node(name).condition == "NotReady"
    assert len(cluster.api.event_log.of_kind(NODE_NOT_READY_EVENT)) == 1


def test_pods_evicted_after_timeout():
    env, cluster = fast_failure_cluster()
    pod = make_pod(env, "p1", gpus=1, duration=10_000)
    cluster.api.create_pod(pod)
    env.run(until=10)
    node = pod.node_name
    cluster.fail_node(node)
    env.run(until=30)
    assert not cluster.api.exists("pods", "p1")
    evictions = cluster.api.event_log.of_kind(EVICTED)
    assert len(evictions) == 1
    assert evictions[0].object_name == "p1"


def test_eviction_releases_resources():
    env, cluster = fast_failure_cluster(nodes=2)
    pod = make_pod(env, "p1", gpus=4, duration=10_000)
    cluster.api.create_pod(pod)
    env.run(until=10)
    cluster.fail_node(pod.node_name)
    env.run(until=30)
    assert cluster.allocated_gpus() == 0


def test_quick_recovery_avoids_eviction():
    env, cluster = fast_failure_cluster()
    pod = make_pod(env, "p1", gpus=1, duration=10_000)
    cluster.api.create_pod(pod)
    env.run(until=10)
    node = pod.node_name
    cluster.fail_node(node)
    env.run(until=12)  # recover before the 5s detection latency
    cluster.recover_node(node)
    env.run(until=40)
    assert cluster.api.get_node(node).condition == "Ready"
    # The pod itself was lost (containers died) and deleted on recovery.
    assert not cluster.api.exists("pods", "p1")


def test_statefulset_pod_rescheduled_on_other_node_after_node_failure():
    env, cluster = fast_failure_cluster(nodes=2)
    ss = StatefulSet(
        meta=ObjectMeta(name="learner"), replicas=1,
        template=PodTemplate(
            containers=[ContainerSpec("main", "learner:latest",
                                      sleep_workload(env, 10_000))],
            resources=ResourceRequest(cpus=1, memory_gb=2, gpus=1,
                                      gpu_type="K80"),
            labels={"type": "learner"}),
        gang=False)
    cluster.api.create_statefulset(ss)
    env.run(until=10)
    original = cluster.api.get_pod("learner-0")
    failed_node = original.node_name
    cluster.fail_node(failed_node)
    env.run(until=60)
    replacement = cluster.api.get_pod("learner-0")
    assert replacement.meta.uid != original.meta.uid
    assert replacement.phase == RUNNING
    assert replacement.node_name != failed_node


def test_failed_node_not_schedulable():
    env, cluster = fast_failure_cluster(nodes=2)
    names = sorted(cluster.kubelets)
    cluster.fail_node(names[0])
    env.run(until=20)  # NotReady now
    pods = [make_pod(env, f"p{i}", gpus=1) for i in range(3)]
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run(until=30)
    assert all(p.node_name == names[1] for p in pods)


def test_recovered_node_schedulable_again():
    env, cluster = fast_failure_cluster(nodes=1)
    name = sorted(cluster.kubelets)[0]
    cluster.fail_node(name)
    env.run(until=20)
    pod = make_pod(env, "p1", gpus=1)
    cluster.api.create_pod(pod)
    env.run(until=25)
    assert pod.phase == PENDING
    cluster.recover_node(name)
    env.run(until=35)
    assert pod.phase == RUNNING


def test_deletion_log_records_node_failure_cause():
    env, cluster = fast_failure_cluster()
    pod = make_pod(env, "p1", gpus=1, duration=10_000)
    cluster.api.create_pod(pod)
    env.run(until=10)
    cluster.fail_node(pod.node_name)
    env.run(until=30)
    causes = [cause for _t, name, _type, cause in cluster.deletion_log
              if name == "p1"]
    assert causes == ["node-failure"]
