"""Integration tests: pod creation → scheduling → execution → completion."""

import pytest

from repro.kube import FAILED, PENDING, RUNNING, SUCCEEDED

from tests.kube.conftest import make_cluster, make_pod


def test_pod_scheduled_and_runs_to_success():
    env, cluster = make_cluster()
    pod = make_pod(env, "p1", gpus=1, duration=50)
    cluster.api.create_pod(pod)
    env.run(until=10)
    assert pod.phase == RUNNING
    assert pod.node_name is not None
    assert pod.scheduled_at < pod.started_at
    env.run(until=100)
    assert pod.phase == SUCCEEDED
    assert pod.finished_at == pytest.approx(pod.started_at + 50)


def test_resources_released_after_completion():
    env, cluster = make_cluster(nodes=1)
    pod = make_pod(env, "p1", gpus=4, duration=10)
    cluster.api.create_pod(pod)
    env.run(until=5)
    assert cluster.allocated_gpus() == 4
    env.run(until=50)
    assert cluster.allocated_gpus() == 0


def test_pod_queues_when_cluster_full_then_schedules():
    env, cluster = make_cluster(nodes=1, gpus_per_node=4)
    first = make_pod(env, "big", gpus=4, duration=30)
    second = make_pod(env, "waiting", gpus=4, duration=10)
    cluster.api.create_pod(first)
    env.run(until=5)
    cluster.api.create_pod(second)
    env.run(until=20)
    assert first.phase == RUNNING
    assert second.phase == PENDING
    assert cluster.scheduler.queue_length == 1
    env.run(until=60)
    assert second.phase == SUCCEEDED
    # Queue time visible in timestamps.
    assert second.scheduled_at >= 30


def test_failing_workload_marks_pod_failed():
    env, cluster = make_cluster()
    pod = make_pod(env, "crash", duration=5, exit_code=3)
    cluster.api.create_pod(pod)
    env.run(until=30)
    assert pod.phase == FAILED
    assert pod.termination_reason == "ContainerFailed"


def test_restart_on_failure_policy_restarts_container():
    env, cluster = make_cluster()
    attempts = []

    def flaky(container):
        attempts.append(env.now)
        yield env.timeout(5)
        return 1 if len(attempts) < 3 else 0

    pod = make_pod(env, "flaky", workload=flaky)
    pod.spec.restart_policy = "OnFailure"
    cluster.api.create_pod(pod)
    env.run(until=100)
    assert len(attempts) == 3
    assert pod.phase == SUCCEEDED
    assert pod.restarts == 2


def test_delete_running_pod_tears_it_down():
    env, cluster = make_cluster()
    pod = make_pod(env, "victim", gpus=2, duration=1000)
    cluster.api.create_pod(pod)
    env.run(until=10)
    assert pod.phase == RUNNING
    cluster.delete_pod("victim")
    env.run(until=20)
    assert not cluster.api.exists("pods", "victim")
    assert cluster.allocated_gpus() == 0


def test_delete_pending_pod_removes_it():
    env, cluster = make_cluster(nodes=1, gpus_per_node=1)
    blocker = make_pod(env, "blocker", gpus=1, duration=1000)
    queued = make_pod(env, "queued", gpus=1, duration=10)
    cluster.api.create_pod(blocker)
    env.run(until=5)
    cluster.api.create_pod(queued)
    env.run(until=10)
    assert queued.phase == PENDING
    cluster.delete_pod("queued")
    env.run(until=20)
    assert not cluster.api.exists("pods", "queued")


def test_node_selector_restricts_placement():
    env, cluster = make_cluster(nodes=2, gpu_type="K80")
    from repro.kube import NodeCapacity
    cluster.add_node("special", NodeCapacity(cpus=32, memory_gb=256, gpus=4,
                                             gpu_type="V100"))
    pod = make_pod(env, "picky", gpus=1)
    pod.spec.node_selector = {"gpu-type": "V100"}
    cluster.api.create_pod(pod)
    env.run(until=10)
    assert pod.node_name == "special"


def test_gpu_type_request_routes_to_matching_node():
    env, cluster = make_cluster(nodes=1, gpu_type="K80")
    from repro.kube import NodeCapacity
    cluster.add_node("v100-node", NodeCapacity(cpus=32, memory_gb=256,
                                               gpus=4, gpu_type="V100"))
    pod = make_pod(env, "v100-job", gpus=2, gpu_type="V100")
    cluster.api.create_pod(pod)
    env.run(until=10)
    assert pod.node_name == "v100-node"


def test_cordoned_node_not_used():
    env, cluster = make_cluster(nodes=2)
    names = sorted(cluster.kubelets)
    cluster.cordon(names[0])
    pods = [make_pod(env, f"p{i}", gpus=1) for i in range(4)]
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run(until=10)
    assert all(p.node_name == names[1] for p in pods)


def test_pod_with_unbound_pvc_waits():
    from repro.kube import ObjectMeta, PersistentVolumeClaim
    env, cluster = make_cluster()
    pod = make_pod(env, "needs-vol", gpus=1, volume_claims=["my-claim"])
    cluster.api.create_pod(pod)
    env.run(until=5)
    assert pod.phase == PENDING
    pvc = PersistentVolumeClaim(meta=ObjectMeta(name="my-claim"), bound=True)
    cluster.api.create_pvc(pvc)
    cluster.scheduler.kick()
    env.run(until=10)
    assert pod.phase == RUNNING
