"""Unit tests for resource vectors and node allocation."""

import pytest

from repro.errors import KubeError
from repro.kube import NodeAllocation, NodeCapacity, ResourceRequest


def gpu_node(gpus=4, gpu_type="K80"):
    return NodeAllocation(NodeCapacity(cpus=32, memory_gb=256, gpus=gpus,
                                       gpu_type=gpu_type))


def test_request_negative_rejected():
    with pytest.raises(KubeError):
        ResourceRequest(cpus=-1)
    with pytest.raises(KubeError):
        ResourceRequest(gpus=-1)


def test_gpu_request_defaults_type_to_any():
    req = ResourceRequest(gpus=2)
    assert req.gpu_type == "any"


def test_fits_within_capacity():
    alloc = gpu_node()
    assert alloc.fits(ResourceRequest(cpus=32, memory_gb=256, gpus=4,
                                      gpu_type="K80"))
    assert not alloc.fits(ResourceRequest(cpus=33))
    assert not alloc.fits(ResourceRequest(memory_gb=257))
    assert not alloc.fits(ResourceRequest(gpus=5, gpu_type="K80"))


def test_gpu_type_mismatch_rejected():
    alloc = gpu_node(gpu_type="K80")
    assert not alloc.fits(ResourceRequest(gpus=1, gpu_type="V100"))
    assert alloc.fits(ResourceRequest(gpus=1, gpu_type="any"))
    assert alloc.fits(ResourceRequest(gpus=1, gpu_type="K80"))


def test_cpu_only_node_rejects_gpu_request():
    alloc = NodeAllocation(NodeCapacity(cpus=8, memory_gb=32))
    assert not alloc.fits(ResourceRequest(gpus=1))
    assert alloc.fits(ResourceRequest(cpus=8))


def test_allocate_release_roundtrip():
    alloc = gpu_node()
    req = ResourceRequest(cpus=8, memory_gb=48, gpus=2, gpu_type="K80")
    alloc.allocate(req)
    assert alloc.free_gpus == 2
    assert alloc.allocated_gpus == 2
    assert alloc.gpu_utilization == pytest.approx(0.5)
    alloc.release(req)
    assert alloc.free_gpus == 4
    assert alloc.free_cpus == 32


def test_allocate_beyond_capacity_raises():
    alloc = gpu_node()
    alloc.allocate(ResourceRequest(gpus=4, gpu_type="K80"))
    with pytest.raises(KubeError):
        alloc.allocate(ResourceRequest(gpus=1, gpu_type="K80"))


def test_release_clamps_at_capacity():
    alloc = gpu_node()
    alloc.release(ResourceRequest(cpus=100, gpus=10, gpu_type="K80"))
    assert alloc.free_cpus == 32
    assert alloc.free_gpus == 4


def test_gpu_utilization_zero_on_cpu_node():
    alloc = NodeAllocation(NodeCapacity(cpus=8, memory_gb=32))
    assert alloc.gpu_utilization == 0.0
