"""Sampled node scoring: knob math, cursor rotation, index exactness,
and the declared quality envelopes.

``percentage_of_nodes_to_score=100`` (the default) is exhaustive and
byte-identical to the pre-sampling scheduler — that contract is pinned
by the perf equivalence suite and the BENCH state digests.  These tests
cover the sampled mode itself: the ``_nodes_to_find`` arithmetic, the
round-robin cursor, the incrementally-maintained (owner, node) count
index, and the placement-quality envelopes (fragmentation, gang wait)
at 50% and 5% sampling.
"""

from repro.kube.api import KubeAPI
from repro.kube.objects import Node, NodeCapacity, ObjectMeta
from repro.sim import Environment

from tests.kube.conftest import make_cluster, make_pod


def _submit_and_run(env, cluster, pods):
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run()


# -- knob arithmetic --------------------------------------------------------


def test_default_config_is_exhaustive():
    env, cluster = make_cluster(nodes=3)
    scheduler = cluster.scheduler
    assert scheduler.config.percentage_of_nodes_to_score == 100
    assert scheduler._nodes_to_find(1000) == 1000


def test_nodes_to_find_percentage_and_floor():
    env, cluster = make_cluster(
        nodes=2, config_kwargs={"percentage_of_nodes_to_score": 5,
                                "min_feasible_nodes_to_find": 100})
    scheduler = cluster.scheduler
    # 5% of 1000 = 50 < the floor of 100.
    assert scheduler._nodes_to_find(1000) == 100
    # 5% of 10000 = 500 > the floor.
    assert scheduler._nodes_to_find(10000) == 500
    # Never more than the cluster itself.
    assert scheduler._nodes_to_find(60) == 60


def test_nodes_to_find_fifty_percent():
    env, cluster = make_cluster(
        nodes=2, config_kwargs={"percentage_of_nodes_to_score": 50,
                                "min_feasible_nodes_to_find": 2})
    assert cluster.scheduler._nodes_to_find(20) == 10


# -- round-robin cursor -----------------------------------------------------


def test_sampled_cursor_rotates_across_attempts():
    """Successive pods start their feasibility scan where the previous
    one stopped, so the sample window walks the whole cluster instead
    of hammering one prefix."""
    env, cluster = make_cluster(
        nodes=12, gpus_per_node=4,
        config_kwargs={"percentage_of_nodes_to_score": 5,
                       "min_feasible_nodes_to_find": 2,
                       "nondeterministic_order": False})
    pods = [make_pod(env, f"p{i}", gpus=1, duration=500.0)
            for i in range(8)]
    _submit_and_run(env, cluster, pods)
    assert cluster.scheduler.pods_scheduled == 8
    placed_on = {pod.node_name for pod in pods}
    # Exhaustive pack scoring would pile everything onto a couple of
    # nodes; the rotating two-node window must spread further.
    assert len(placed_on) >= 4
    # The cursor ended somewhere inside the ring, and far fewer nodes
    # were examined than 8 pods x 12 nodes exhaustive.
    assert 0 <= cluster.scheduler.last_scored_node_index < 12
    assert cluster.scheduler.nodes_examined < 8 * 12


def test_exhaustive_mode_examines_every_node():
    env, cluster = make_cluster(nodes=5, gpus_per_node=4)
    pods = [make_pod(env, f"p{i}", gpus=1, duration=500.0)
            for i in range(3)]
    _submit_and_run(env, cluster, pods)
    assert cluster.scheduler.pods_scheduled == 3
    assert cluster.scheduler.nodes_examined == 3 * 5


# -- (owner, node) count index ----------------------------------------------


def _recount(api):
    counts = {}
    for pod in api.list_pods():
        if pod.meta.owner is not None and pod.node_name is not None:
            key = (pod.meta.owner, pod.node_name)
            counts[key] = counts.get(key, 0) + 1
    return counts


def test_owner_node_index_tracks_bind_and_delete():
    env, cluster = make_cluster(nodes=2, gpus_per_node=8)
    scheduler = cluster.scheduler
    if scheduler._owner_node_counts is None:
        return  # REPRO_PERF_DISABLE: the reference scan runs instead
    pods = []
    for i in range(6):
        pod = make_pod(env, f"owned-{i}", gpus=1, duration=300.0)
        pod.meta.owner = f"set-{i % 2}"
        pods.append(pod)
        cluster.api.create_pod(pod)
    env.run(until=50.0)
    assert scheduler.pods_scheduled == 6
    assert scheduler._owner_node_counts == _recount(cluster.api)
    # Deleting pods must decrement the exact (owner, node) pairs.
    cluster.delete_pod("owned-0")
    cluster.delete_pod("owned-3")
    env.run(until=100.0)
    assert scheduler._owner_node_counts == _recount(cluster.api)


def test_owner_index_ignores_ownerless_pods():
    env, cluster = make_cluster(nodes=2, gpus_per_node=8)
    scheduler = cluster.scheduler
    if scheduler._owner_node_counts is None:
        return
    pods = [make_pod(env, f"p{i}", gpus=1, duration=300.0)
            for i in range(4)]
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run(until=50.0)
    assert scheduler.pods_scheduled == 4
    # The reference ``_score`` never counts owner-less pods, so the
    # index must not either.
    assert scheduler._owner_node_counts == {}


def test_owner_index_scores_match_reference_scan():
    """The optimized same-owner count must equal what the reference
    ``list_pods`` scan would have returned, pod for pod."""
    env, cluster = make_cluster(policy="spread", nodes=3, gpus_per_node=8)
    scheduler = cluster.scheduler
    if scheduler._owner_node_counts is None:
        return
    for i in range(9):
        pod = make_pod(env, f"rep-{i}", gpus=1, duration=300.0)
        pod.meta.owner = "replicaset-a"
        cluster.api.create_pod(pod)
    env.run(until=50.0)
    assert scheduler.pods_scheduled == 9
    api = cluster.api
    for (owner, node), count in scheduler._owner_node_counts.items():
        assert count == len(api.list_pods(owner=owner, node_name=node))


# -- score-cache invalidation ----------------------------------------------


def test_score_cache_dropped_when_allocation_changes():
    env, cluster = make_cluster(nodes=2, gpus_per_node=8)
    scheduler = cluster.scheduler
    if scheduler._score_cache is None:
        return
    pod = make_pod(env, "warm", gpus=1, duration=300.0)
    _submit_and_run(env, cluster, [pod])
    assert scheduler.pods_scheduled == 1
    # Binding reserved resources on the chosen node, so its cached
    # scores (computed pre-bind) must be gone; stale entries would
    # misrank the next pod.
    assert pod.node_name not in scheduler._score_cache


def test_node_event_invalidates_scores():
    env, cluster = make_cluster(nodes=2, gpus_per_node=8)
    scheduler = cluster.scheduler
    if scheduler._score_cache is None:
        return
    scheduler._score_cache["node-K80-0"] = {0: 1.0}
    node = cluster.api.get_node("node-K80-0")
    cluster.api.update_node(node)
    assert "node-K80-0" not in scheduler._score_cache


# -- node-indexed kubelet fanout -------------------------------------------


def test_pod_events_reach_only_the_matching_nodes_kubelet():
    env = Environment()
    api = KubeAPI(env)
    seen = []
    api.subscribe("pods", lambda verb, pod: seen.append(("general", verb)))
    api.subscribe_pods_for_node(
        "n1", lambda verb, pod: seen.append(("n1", verb)))
    api.subscribe_pods_for_node(
        "n2", lambda verb, pod: seen.append(("n2", verb)))
    api.create_node(Node(meta=ObjectMeta(name="n1"),
                         capacity=NodeCapacity(cpus=1, memory_gb=1)))
    pod = make_pod(env, "p0", gpus=0)
    api.create_pod(pod)          # unbound: general only
    api.bind_pod(pod, "n1")      # bound: general + n1
    api.delete_pod("p0")         # still carries node_name=n1
    general = [entry for entry in seen if entry[0] == "general"]
    assert [verb for _, verb in general] == \
        ["ADDED", "MODIFIED", "DELETED"]
    n1 = [entry for entry in seen if entry[0] == "n1"]
    n2 = [entry for entry in seen if entry[0] == "n2"]
    if api._pod_node_listeners is not None:
        assert [verb for _, verb in n1] == ["MODIFIED", "DELETED"]
        assert n2 == []
    else:
        # Reference mode: full fanout, listeners self-filter.
        assert len(n1) == len(n2) == 3


# -- sampled-mode quality envelopes ----------------------------------------


def _fragmentation(cluster):
    occupied = partial = 0
    for allocation in cluster.allocations.values():
        if allocation.free_gpus < allocation.capacity.gpus:
            occupied += 1
            if allocation.free_gpus > 0:
                partial += 1
    return partial / occupied if occupied else 0.0


def _run_quality(pct):
    env, cluster = make_cluster(
        nodes=20, gpus_per_node=4,
        config_kwargs={"percentage_of_nodes_to_score": pct,
                       "min_feasible_nodes_to_find": 2,
                       "nondeterministic_order": False})
    pods = [make_pod(env, f"q{i}", gpus=1 + (i % 2), duration=5000.0)
            for i in range(40)]
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run(until=200.0)
    assert cluster.scheduler.pods_scheduled == 40
    waits = [pod.scheduled_at - pod.meta.creation_time for pod in pods]
    return _fragmentation(cluster), sum(waits) / len(waits)


def test_sampled_quality_within_declared_envelopes():
    """Fragmentation may grow by at most +0.5 and mean wait by at most
    +0.25s versus exhaustive — the same envelopes the BENCH harness
    enforces (QUALITY_BOUNDS)."""
    frag_100, wait_100 = _run_quality(100)
    for pct in (50, 5):
        frag, wait = _run_quality(pct)
        assert frag <= frag_100 + 0.50, f"pct={pct}"
        assert wait <= wait_100 + 0.25, f"pct={pct}"


def _run_gang_quality(pct):
    env, cluster = make_cluster(
        gang=True, nodes=20, gpus_per_node=4,
        config_kwargs={"percentage_of_nodes_to_score": pct,
                       "min_feasible_nodes_to_find": 2,
                       "nondeterministic_order": False})
    pods = []
    for g in range(6):
        for m in range(4):
            pods.append(make_pod(env, f"g{g}-m{m}", gpus=1,
                                 duration=5000.0,
                                 gang_name=f"gang-{g}", gang_size=4))
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run(until=200.0)
    assert cluster.scheduler.pods_scheduled == 24
    waits = [pod.scheduled_at - pod.meta.creation_time for pod in pods]
    return sum(waits) / len(waits)


def test_sampled_gang_wait_within_declared_envelope():
    """Gang placement under sampling must not stall: BSA still sees
    enough feasible nodes per member to place whole gangs promptly."""
    wait_100 = _run_gang_quality(100)
    for pct in (50, 5):
        wait = _run_gang_quality(pct)
        assert wait <= wait_100 + 1.0, f"pct={pct}"
