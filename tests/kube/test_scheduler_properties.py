"""Property-based tests for scheduler safety invariants.

Random pod workloads (sizes, arrival order, deletions) must never violate:

* no node is ever over-allocated (GPUs, CPUs, memory),
* every Running pod is bound to a Ready node that fits it,
* released resources return exactly to capacity once the cluster drains.
"""

from hypothesis import given, settings, strategies as st

from repro.docker import Image
from repro.kube import Cluster, NodeCapacity, SchedulerConfig
from repro.kube.objects import ContainerSpec, ObjectMeta, Pod, PodSpec
from repro.kube.resources import ResourceRequest
from repro.sim import Environment, RngRegistry


POD_SPECS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),   # gpus
        st.floats(min_value=0.5, max_value=8.0),  # cpus
        st.integers(min_value=5, max_value=60),  # duration
        st.booleans(),                            # delete mid-run?
    ),
    min_size=1, max_size=15,
)


def build(seed, gang=False):
    env = Environment()
    cluster = Cluster(env, RngRegistry(seed),
                      SchedulerConfig(policy="pack", gang=gang))
    cluster.push_image(Image("learner", size_bytes=1e6))
    cluster.add_nodes(3, NodeCapacity(cpus=16, memory_gb=64, gpus=4,
                                      gpu_type="K80"))
    return env, cluster


def no_overallocation(cluster):
    for allocation in cluster.allocations.values():
        assert allocation.free_gpus >= 0
        assert allocation.free_cpus >= -1e-9
        assert allocation.free_memory_gb >= -1e-9
        assert allocation.free_gpus <= allocation.capacity.gpus
        assert allocation.free_cpus <= allocation.capacity.cpus + 1e-9


@settings(max_examples=30, deadline=None)
@given(specs=POD_SPECS, seed=st.integers(min_value=0, max_value=50))
def test_no_overallocation_under_random_churn(specs, seed):
    env, cluster = build(seed)

    def sleeper(duration):
        def workload(container):
            yield env.timeout(duration)
            return 0

        return workload

    pods = []
    for i, (gpus, cpus, duration, delete) in enumerate(specs):
        pod = Pod(meta=ObjectMeta(name=f"p{i}"),
                  spec=PodSpec(
                      containers=[ContainerSpec("m", "learner:latest",
                                                sleeper(duration))],
                      resources=ResourceRequest(
                          cpus=cpus, memory_gb=4.0, gpus=gpus,
                          gpu_type="K80" if gpus else None)))
        cluster.api.create_pod(pod)
        pods.append((pod, delete))
    for step in range(12):
        env.run(until=env.now + 10)
        no_overallocation(cluster)
        # Every Running pod is on a fitting, live node.
        for pod, _d in pods:
            if pod.phase == "Running":
                assert pod.node_name in cluster.allocations
        if step == 2:
            for pod, delete in pods:
                if delete:
                    cluster.delete_pod(pod.name)
    env.run(until=env.now + 200)
    no_overallocation(cluster)
    # Cluster fully drained: everything returned to capacity.
    remaining = [p for p, _d in pods
                 if cluster.api.exists("pods", p.name)
                 and not p.is_terminal]
    if not remaining:
        for allocation in cluster.allocations.values():
            assert allocation.free_gpus == allocation.capacity.gpus
            assert abs(allocation.free_cpus -
                       allocation.capacity.cpus) < 1e-6


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100),
       jobs=st.integers(min_value=1, max_value=10),
       learners=st.integers(min_value=1, max_value=4),
       gpus=st.integers(min_value=1, max_value=2))
def test_gang_all_or_nothing_invariant(seed, jobs, learners, gpus):
    """At any observation point, a gang is either fully placed or fully
    pending (bind windows aside, which resolve within a tick)."""
    env, cluster = build(seed, gang=True)

    def sleeper(container):
        yield env.timeout(10_000)
        return 0

    by_job = {}
    for j in range(jobs):
        name = f"g{j}"
        pods = []
        for i in range(learners):
            pod = Pod(meta=ObjectMeta(name=f"{name}-{i}"),
                      spec=PodSpec(
                          containers=[ContainerSpec(
                              "m", "learner:latest", sleeper)],
                          resources=ResourceRequest(
                              cpus=1, memory_gb=2, gpus=gpus,
                              gpu_type="K80"),
                          gang_name=name, gang_size=learners))
            cluster.api.create_pod(pod)
            pods.append(pod)
        by_job[name] = pods
    env.run(until=60)
    no_overallocation(cluster)
    for name, pods in by_job.items():
        placed = [p for p in pods if p.node_name is not None]
        assert len(placed) in (0, len(pods)), name
