"""Tests for Spread vs Pack placement and the fragmentation phenomenon
described in Section 3.4 of the paper."""


from repro.kube import PENDING, RUNNING

from tests.kube.conftest import make_cluster, make_pod


def test_spread_distributes_across_nodes():
    env, cluster = make_cluster(policy="spread", nodes=4, gpus_per_node=4)
    pods = [make_pod(env, f"job{i}", gpus=1) for i in range(4)]
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run(until=10)
    nodes_used = {p.node_name for p in pods}
    assert len(nodes_used) == 4


def test_pack_crams_onto_one_node():
    env, cluster = make_cluster(policy="pack", nodes=4, gpus_per_node=4)
    pods = [make_pod(env, f"job{i}", gpus=1) for i in range(4)]
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run(until=10)
    nodes_used = {p.node_name for p in pods}
    assert len(nodes_used) == 1


def test_paper_fragmentation_example():
    """Section 3.4: 4 jobs x 1 GPU on a 4-node/4-GPU cluster, then a 4-GPU
    job arrives.  Spread strands it; Pack fits it."""
    for policy, expect_scheduled in (("spread", False), ("pack", True)):
        env, cluster = make_cluster(policy=policy, nodes=4, gpus_per_node=4)
        small = [make_pod(env, f"small{i}", gpus=1, duration=10_000)
                 for i in range(4)]
        for pod in small:
            cluster.api.create_pod(pod)
        env.run(until=10)
        big = make_pod(env, "big", gpus=4, duration=100)
        cluster.api.create_pod(big)
        env.run(until=20)
        scheduled = big.phase == RUNNING
        assert scheduled == expect_scheduled, policy


def test_pack_leaves_whole_nodes_free():
    env, cluster = make_cluster(policy="pack", nodes=4, gpus_per_node=4)
    pods = [make_pod(env, f"j{i}", gpus=1, duration=10_000)
            for i in range(4)]
    for pod in pods:
        cluster.api.create_pod(pod)
    env.run(until=10)
    free_per_node = [a.free_gpus for a in cluster.allocations.values()]
    assert sorted(free_per_node) == [0, 4, 4, 4]


def test_spread_avoids_same_owner_colocation():
    env, cluster = make_cluster(policy="spread", nodes=2, gpus_per_node=4)
    owner = "rs-uid-1"
    pods = [make_pod(env, f"replica{i}", gpus=1) for i in range(2)]
    for pod in pods:
        pod.meta.owner = owner
        cluster.api.create_pod(pod)
    env.run(until=10)
    assert pods[0].node_name != pods[1].node_name


def test_pack_fills_partially_used_node_first():
    env, cluster = make_cluster(policy="pack", nodes=2, gpus_per_node=4)
    first = make_pod(env, "seed", gpus=2, duration=10_000)
    cluster.api.create_pod(first)
    env.run(until=5)
    second = make_pod(env, "joiner", gpus=2, duration=10_000)
    cluster.api.create_pod(second)
    env.run(until=10)
    assert second.node_name == first.node_name


def test_queued_pod_eventually_scheduled_after_release():
    env, cluster = make_cluster(policy="pack", nodes=1, gpus_per_node=4)
    blocker = make_pod(env, "blocker", gpus=4, duration=50)
    waiter = make_pod(env, "waiter", gpus=4, duration=10)
    cluster.api.create_pod(blocker)
    env.run(until=5)
    cluster.api.create_pod(waiter)
    env.run(until=40)
    assert waiter.phase == PENDING
    env.run(until=100)
    assert waiter.phase in (RUNNING, "Succeeded")
