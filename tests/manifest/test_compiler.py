"""Unit tests for the manifest compiler: gating, lowering, verify."""

import textwrap

import pytest

from repro.chaos.engine import Scenario
from repro.manifest import (
    ManifestError,
    compile_manifest,
    compile_manifest_file,
    discover_manifests,
)

MINIMAL_CHAOS = textwrap.dedent("""\
    kind: chaos
    name: minimal
    description: "defaults everywhere"
    topology:
      nodes:
        - {count: 4, gpus_per_node: 4, gpu_type: K80}
    """)


def test_compile_rejects_manifests_with_findings():
    source = MINIMAL_CHAOS + "faults:\n  - {at_s: 10.0, kind: nope}\n"
    with pytest.raises(ManifestError) as excinfo:
        compile_manifest(source, "bad.yaml")
    err = excinfo.value
    assert err.findings and err.findings[0].code == "MAN002"
    assert "bad.yaml" in err.render()
    assert "MAN002" in err.render()


def test_compile_rejects_empty_document():
    with pytest.raises(ManifestError):
        compile_manifest("# nothing here\n", "empty.yaml")


def test_compile_file_missing_path_raises():
    with pytest.raises(ManifestError):
        compile_manifest_file("/no/such/manifest.yaml")


def test_unspecified_workload_fields_lower_to_scenario_defaults():
    compiled = compile_manifest(MINIMAL_CHAOS, "minimal.yaml")
    defaults = Scenario(name="minimal", description="defaults everywhere",
                        steps=())
    assert compiled.scenario == defaults
    assert compiled.kind == "chaos"
    assert compiled.seed_override is None
    assert [g.node_names() for g in compiled.node_groups] == \
        [tuple(f"node-K80-{i}" for i in range(4))]


def test_integer_workload_seed_becomes_seed_override():
    source = MINIMAL_CHAOS + "workload:\n  jobs: 3\n  seed: 42\n"
    compiled = compile_manifest(source, "seeded.yaml")
    assert compiled.seed_override == 42
    assert compiled.scenario.jobs == 3


def test_verify_reports_missing_hypothesis_and_counter():
    source = MINIMAL_CHAOS + textwrap.dedent("""\
        hypotheses:
          checks: [no-lost-job-records]
          counters:
            - {name: write-errors, equals: 0}
        """)
    compiled = compile_manifest(source, "checked.yaml")

    class FakeReport:
        hypotheses = ()
        counters = {}

    results = compiled.verify(FakeReport())
    assert [(r.name, r.ok) for r in results] == [
        ("no-lost-job-records", False), ("write-errors", False)]
    assert results[0].detail == "hypothesis never evaluated"
    assert results[1].detail == "counter absent from the report"


def test_verify_checks_counter_bounds():
    source = MINIMAL_CHAOS + textwrap.dedent("""\
        hypotheses:
          counters:
            - {name: write-errors, max: 2}
        """)
    compiled = compile_manifest(source, "bounds.yaml")

    class FakeReport:
        hypotheses = ()
        counters = {"write-errors": 5}

    results = compiled.verify(FakeReport())
    assert [(r.name, r.ok) for r in results] == [("write-errors", False)]
    assert "write-errors=5" in results[0].detail


def test_discover_manifests_skips_fixtures_and_reads_names(tmp_path):
    (tmp_path / "real.yaml").write_text(
        "kind: chaos\nname: my-scenario\ndescription: \"x\"\n"
        "topology: {nodes: []}\n")
    (tmp_path / "fix.yaml").write_text(
        "# staticcheck: fixture\nkind: chaos\nname: fixture-scenario\n")
    (tmp_path / "broken.yaml").write_text("kind: [unclosed\n")
    found = discover_manifests(tmp_path)
    assert set(found) == {"my-scenario", "broken"}
    assert found["my-scenario"] == tmp_path / "real.yaml"
