"""Byte-identical regression tests: manifests vs their built-in twins.

The ported manifests under ``scenarios/`` must lower to scenario
dataclasses *equal* to the hand-written ones, and — the stronger claim —
drive the engines to the same audit log, the same end-state witness,
and the same RNG stream positions, including under a permuted tie-break
schedule.  Any drift between the YAML and the Python twin shows up here
as a hard diff, not a subtle behavior change.
"""

from pathlib import Path

import pytest

from repro.chaos.engine import ChaosEngine
from repro.chaos.federation import (
    FEDERATION_SCENARIOS,
    FederationChaosEngine,
)
from repro.chaos.scenarios import SCENARIOS
from repro.manifest import compile_manifest_file

SCENARIO_DIR = Path(__file__).resolve().parents[2] / "scenarios"

PORTED = sorted(path.name for path in SCENARIO_DIR.glob("*.yaml"))


def builtin_for(name):
    scenario = SCENARIOS.get(name) or FEDERATION_SCENARIOS.get(name)
    assert scenario is not None, f"no builtin twin for {name}"
    return scenario


def rng_positions(engine):
    """Every RNG stream's exact position after the run."""
    return {name: stream.getstate()
            for name, stream in engine.rng._streams.items()}


def test_all_six_scenarios_are_ported():
    assert len(PORTED) == 6
    names = {compile_manifest_file(SCENARIO_DIR / name).name
             for name in PORTED}
    assert names == set(SCENARIOS) | {"federation-brownout-migration"}


@pytest.mark.parametrize("filename", PORTED)
def test_manifest_compiles_dataclass_equal(filename):
    compiled = compile_manifest_file(SCENARIO_DIR / filename)
    assert compiled.scenario == builtin_for(compiled.name)


def test_chaos_run_byte_identical():
    compiled = compile_manifest_file(SCENARIO_DIR / "etcd-leader-kill.yaml")
    manifest_engine = compiled.build_engine(seed=7)
    manifest_report = manifest_engine.run()
    builtin_engine = ChaosEngine(builtin_for(compiled.name), seed=7)
    builtin_report = builtin_engine.run()
    assert manifest_report.audit_lines == builtin_report.audit_lines
    assert manifest_report.end_state() == builtin_report.end_state()
    assert manifest_report.counters == builtin_report.counters
    assert rng_positions(manifest_engine) == rng_positions(builtin_engine)


def test_federation_run_byte_identical():
    compiled = compile_manifest_file(
        SCENARIO_DIR / "federation-brownout-migration.yaml")
    manifest_engine = compiled.build_engine(seed=3)
    manifest_report = manifest_engine.run()
    builtin_engine = FederationChaosEngine(builtin_for(compiled.name),
                                           seed=3)
    builtin_report = builtin_engine.run()
    assert manifest_report.audit_lines == builtin_report.audit_lines
    assert manifest_report.end_state() == builtin_report.end_state()
    assert manifest_report.counters == builtin_report.counters
    assert rng_positions(manifest_engine) == rng_positions(builtin_engine)


def test_perturbed_schedule_stays_byte_identical():
    """Parity must survive a --perturb-style tie-break permutation."""
    compiled = compile_manifest_file(
        SCENARIO_DIR / "federation-brownout-migration.yaml")
    manifest_engine = compiled.build_engine(seed=3, tiebreak_seed=5)
    manifest_report = manifest_engine.run()
    builtin_engine = FederationChaosEngine(builtin_for(compiled.name),
                                           seed=3, tiebreak_seed=5)
    builtin_report = builtin_engine.run()
    assert manifest_report.audit_lines == builtin_report.audit_lines
    assert manifest_report.end_state() == builtin_report.end_state()
    assert rng_positions(manifest_engine) == rng_positions(builtin_engine)


def test_declared_hypotheses_pass_on_federation_manifest():
    compiled = compile_manifest_file(
        SCENARIO_DIR / "federation-brownout-migration.yaml")
    report = compiled.run(seed=3)
    results = compiled.verify(report)
    assert results, "manifest declares no checks"
    assert all(result.ok for result in results), \
        [f"{r.name}: {r.detail}" for r in results if not r.ok]
