"""The merged scenario registry: builtins + discovered manifests."""

import pytest

from repro.chaos.federation import FEDERATION_SCENARIOS
from repro.chaos.registry import (
    get_registered_scenario,
    scenario_registry,
)
from repro.chaos.scenarios import SCENARIOS
from repro.manifest import ManifestError


def test_every_ported_scenario_is_listed_with_both_origins():
    registry = scenario_registry()
    ported = list(SCENARIOS) + ["federation-brownout-migration"]
    for name in ported:
        entry = registry[name]
        assert entry.builtin is not None
        assert entry.manifest_path is not None, \
            f"{name} has no ported manifest"
        assert entry.origins.startswith("builtin+manifest:")
    for name in set(FEDERATION_SCENARIOS) - set(ported):
        assert registry[name].origins == "builtin"


def test_builtin_wins_resolution():
    entry = get_registered_scenario("etcd-leader-kill")
    kind, scenario, compiled = entry.resolve()
    assert kind == "chaos"
    assert scenario is SCENARIOS["etcd-leader-kill"]
    assert compiled is None


def test_manifest_only_scenario_lists_and_resolves(tmp_path):
    (tmp_path / "extra.yaml").write_text(
        'kind: chaos\nname: manifest-only\ndescription: "yaml twin"\n'
        "topology:\n  nodes:\n"
        "    - {count: 2, gpus_per_node: 4, gpu_type: K80}\n")
    registry = scenario_registry(tmp_path)
    entry = registry["manifest-only"]
    assert entry.builtin is None
    assert entry.origins == f"manifest:{(tmp_path / 'extra.yaml').as_posix()}"
    assert entry.description == "yaml twin"
    kind, scenario, compiled = entry.resolve()
    assert kind == "chaos"
    assert scenario.name == "manifest-only"
    assert compiled is not None and compiled.node_groups


def test_broken_manifest_lists_but_fails_resolution(tmp_path):
    (tmp_path / "broken.yaml").write_text(
        'kind: chaos\nname: broken-one\ndescription: "broken"\n'
        "topology:\n  nodes:\n"
        "    - {count: 2, gpus_per_node: 4, gpu_type: K80}\n"
        "faults:\n  - {at_s: 5.0, kind: not-a-fault}\n")
    entry = scenario_registry(tmp_path)["broken-one"]
    with pytest.raises(ManifestError):
        entry.resolve()


def test_unknown_scenario_raises_with_known_names():
    with pytest.raises(KeyError) as excinfo:
        get_registered_scenario("no-such-scenario")
    assert "etcd-leader-kill" in excinfo.value.args[0]
