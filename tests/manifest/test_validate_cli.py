"""``repro validate <manifest> [--run]`` and the chaos CLI registry."""

import textwrap
from pathlib import Path

from repro.chaos.cli import main as chaos_main
from repro.cli import main as repro_main

SCENARIO_DIR = Path(__file__).resolve().parents[2] / "scenarios"

#: Small enough to run as part of the unit suite (~1s simulated setup).
TINY_CHAOS = textwrap.dedent("""\
    kind: chaos
    name: tiny
    description: "fast smoke scenario"
    topology:
      nodes:
        - {count: 2, gpus_per_node: 4, gpu_type: K80}
    workload:
      jobs: 2
      interarrival_s: 10.0
      iterations: 20
      seed: inherit
    run: {horizon_s: 240.0, settle_s: 60.0}
    faults:
      - {at_s: 30.0, kind: etcd-leader-kill}
    hypotheses:
      checks: [no-lost-job-records, etcd-leader-elected]
      counters:
        - {name: write-errors, equals: 0}
    """)


def test_validate_clean_manifest_exits_zero(capsys):
    path = SCENARIO_DIR / "etcd-leader-kill.yaml"
    assert repro_main(["validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "static pass clean" in out


def test_validate_prints_findings_and_exits_one(tmp_path, capsys):
    bad = tmp_path / "bad.yaml"
    bad.write_text(TINY_CHAOS.replace("etcd-leader-kill",
                                      "etcd-leader-kil"))
    assert repro_main(["validate", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "MAN002" in out
    assert "static finding(s)" in out


def test_validate_missing_file_exits_two(capsys):
    assert repro_main(["validate", "/no/such/file.yaml"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_validate_run_passes_on_tiny_manifest(tmp_path, capsys):
    path = tmp_path / "tiny.yaml"
    path.write_text(TINY_CHAOS)
    assert repro_main(["validate", str(path), "--run"]) == 0
    out = capsys.readouterr().out
    assert "static pass clean" in out
    assert "check no-lost-job-records: PASS" in out
    assert "check write-errors: PASS" in out
    assert "run PASS" in out


def test_validate_run_fails_on_impossible_assertion(tmp_path, capsys):
    path = tmp_path / "tiny.yaml"
    path.write_text(TINY_CHAOS.replace(
        "{name: write-errors, equals: 0}",
        "{name: jobs-submitted, equals: 999}"))
    assert repro_main(["validate", str(path), "--run"]) == 1
    out = capsys.readouterr().out
    assert "check jobs-submitted: FAIL" in out
    assert "run FAIL" in out


def test_chaos_list_shows_manifest_origins(capsys):
    assert chaos_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "etcd-leader-kill (builtin+manifest:" in out
    assert "federation-brownout-migration (builtin+manifest:" in out
    assert "[federation]" in out


def test_chaos_unknown_scenario_exits_two(capsys):
    assert chaos_main(["--scenario", "no-such-scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().out
