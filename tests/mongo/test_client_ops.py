"""Coverage for the remaining MongoClient operations."""

import pytest

from repro.mongo import MongoClient, MongoDatabase
from repro.sim import Environment


@pytest.fixture
def client():
    env = Environment()
    return env, MongoClient(env, MongoDatabase())


def run(env, gen):
    return env.run_until_complete(env.process(gen), limit=env.now + 100)


def test_update_many_through_client(client):
    env, mongo = client

    def flow():
        for i in range(4):
            yield mongo.insert_one("jobs", {"user": "a", "seq": i})
        modified = yield mongo.update_many(
            "jobs", {"user": "a"}, {"$set": {"status": "FAILED"}})
        count = yield mongo.count("jobs", {"status": "FAILED"})
        return modified, count

    assert run(env, flow()) == (4, 4)


def test_delete_many_through_client(client):
    env, mongo = client

    def flow():
        for user in ("a", "a", "b"):
            yield mongo.insert_one("jobs", {"user": user})
        deleted = yield mongo.delete_many("jobs", {"user": "a"})
        remaining = yield mongo.count("jobs")
        return deleted, remaining

    assert run(env, flow()) == (2, 1)


def test_find_with_sort_and_limit_through_client(client):
    env, mongo = client

    def flow():
        for i in (3, 1, 2):
            yield mongo.insert_one("jobs", {"seq": i})
        top = yield mongo.find("jobs", sort=[("seq", -1)], limit=2)
        return [doc["seq"] for doc in top]

    assert run(env, flow()) == [3, 2]


def test_upsert_through_client(client):
    env, mongo = client

    def flow():
        modified = yield mongo.update_one(
            "state", {"_id": "singleton"},
            {"$set": {"value": 1}}, upsert=True)
        doc = yield mongo.find_one("state", {"_id": "singleton"})
        return modified, doc["value"]

    assert run(env, flow()) == (1, 1)
