"""Unit tests for the MongoDB collection."""

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.mongo import Collection


@pytest.fixture
def coll():
    return Collection("jobs")


def test_insert_assigns_id(coll):
    doc_id = coll.insert_one({"user": "alice"})
    assert doc_id == "jobs-1"
    assert coll.get(doc_id)["user"] == "alice"


def test_insert_respects_explicit_id(coll):
    coll.insert_one({"_id": "custom", "x": 1})
    assert coll.get("custom")["x"] == 1


def test_insert_duplicate_id_rejected(coll):
    coll.insert_one({"_id": "a"})
    with pytest.raises(DuplicateKeyError):
        coll.insert_one({"_id": "a"})


def test_insert_isolates_caller_document(coll):
    original = {"user": "alice", "nested": {"a": 1}}
    doc_id = coll.insert_one(original)
    original["nested"]["a"] = 999
    assert coll.get(doc_id)["nested"]["a"] == 1


def test_find_returns_copies(coll):
    coll.insert_one({"_id": "a", "nested": {"x": 1}})
    found = coll.find_one({"_id": "a"})
    found["nested"]["x"] = 2
    assert coll.get("a")["nested"]["x"] == 1


def test_find_with_query_sort_limit(coll):
    for i, user in enumerate(["carol", "alice", "bob", "alice"]):
        coll.insert_one({"user": user, "seq": i})
    alices = coll.find({"user": "alice"}, sort=[("seq", -1)], limit=1)
    assert len(alices) == 1 and alices[0]["seq"] == 3


def test_get_missing_raises(coll):
    with pytest.raises(KeyNotFoundError):
        coll.get("nope")


def test_update_one_modifies_first_match_only(coll):
    coll.insert_many([{"k": 1, "status": "old"}, {"k": 1, "status": "old"}])
    assert coll.update_one({"k": 1}, {"$set": {"status": "new"}}) == 1
    assert coll.count({"status": "new"}) == 1


def test_update_many(coll):
    coll.insert_many([{"k": 1}, {"k": 1}, {"k": 2}])
    assert coll.update_many({"k": 1}, {"$set": {"seen": True}}) == 2
    assert coll.count({"seen": True}) == 2


def test_update_one_upsert_inserts(coll):
    modified = coll.update_one({"name": "ghost"},
                               {"$set": {"status": "NEW"}}, upsert=True)
    assert modified == 1
    doc = coll.find_one({"name": "ghost"})
    assert doc["status"] == "NEW"


def test_update_one_no_match_returns_zero(coll):
    assert coll.update_one({"missing": 1}, {"$set": {"a": 1}}) == 0


def test_replace_one(coll):
    coll.insert_one({"_id": "a", "old": True})
    assert coll.replace_one({"_id": "a"}, {"fresh": True}) == 1
    doc = coll.get("a")
    assert doc == {"_id": "a", "fresh": True}


def test_delete_one_and_many(coll):
    coll.insert_many([{"k": 1}, {"k": 1}, {"k": 2}])
    assert coll.delete_one({"k": 1}) == 1
    assert coll.count() == 2
    assert coll.delete_many({"k": {"$in": [1, 2]}}) == 2
    assert coll.count() == 0


def test_unique_index_blocks_duplicates(coll):
    coll.create_index("name", unique=True)
    coll.insert_one({"name": "job-a"})
    with pytest.raises(DuplicateKeyError):
        coll.insert_one({"name": "job-a"})
    coll.insert_one({"name": "job-b"})  # distinct value fine
    coll.insert_one({"other": 1})  # missing value fine


def test_unique_index_on_existing_duplicate_data_rejected(coll):
    coll.insert_many([{"name": "dup"}, {"name": "dup"}])
    with pytest.raises(DuplicateKeyError):
        coll.create_index("name", unique=True)


def test_unique_index_checked_on_update(coll):
    coll.create_index("name", unique=True)
    coll.insert_one({"_id": "a", "name": "x"})
    coll.insert_one({"_id": "b", "name": "y"})
    with pytest.raises(DuplicateKeyError):
        coll.update_one({"_id": "b"}, {"$set": {"name": "x"}})


def test_distinct(coll):
    coll.insert_many([{"u": "a"}, {"u": "b"}, {"u": "a"}])
    assert sorted(coll.distinct("u")) == ["a", "b"]


def test_count_with_and_without_query(coll):
    coll.insert_many([{"k": 1}, {"k": 2}])
    assert coll.count() == 2
    assert coll.count({"k": 1}) == 1


def test_oplog_records_all_writes(coll):
    coll.insert_one({"_id": "a", "v": 1})
    coll.update_one({"_id": "a"}, {"$set": {"v": 2}})
    coll.delete_one({"_id": "a"})
    ops = [entry[0] for entry in coll.oplog]
    assert ops == ["insert", "update", "delete"]
