"""Unit tests for Mongo-style query matching and update application."""

import pytest

from repro.errors import StoreError
from repro.mongo.query import apply_update, matches, sort_documents


DOC = {
    "_id": "job-1",
    "user": "alice",
    "status": "RUNNING",
    "gpus": 4,
    "framework": {"name": "tensorflow", "version": "1.5"},
    "tags": ["vision", "resnet"],
}


def test_plain_equality():
    assert matches(DOC, {"user": "alice"})
    assert not matches(DOC, {"user": "bob"})


def test_dotted_path_equality():
    assert matches(DOC, {"framework.name": "tensorflow"})
    assert not matches(DOC, {"framework.name": "caffe"})


def test_missing_field_never_equals():
    assert not matches(DOC, {"missing": "x"})


def test_comparison_operators():
    assert matches(DOC, {"gpus": {"$gt": 2}})
    assert matches(DOC, {"gpus": {"$gte": 4}})
    assert matches(DOC, {"gpus": {"$lt": 8}})
    assert matches(DOC, {"gpus": {"$lte": 4}})
    assert matches(DOC, {"gpus": {"$ne": 5}})
    assert not matches(DOC, {"gpus": {"$gt": 4}})


def test_comparison_on_missing_field_is_false():
    assert not matches(DOC, {"missing": {"$gt": 0}})
    assert matches(DOC, {"missing": {"$ne": 1}})  # absent != 1


def test_in_nin():
    assert matches(DOC, {"status": {"$in": ["RUNNING", "PENDING"]}})
    assert matches(DOC, {"status": {"$nin": ["FAILED"]}})
    assert not matches(DOC, {"status": {"$in": ["FAILED"]}})


def test_exists():
    assert matches(DOC, {"user": {"$exists": True}})
    assert matches(DOC, {"missing": {"$exists": False}})
    assert not matches(DOC, {"missing": {"$exists": True}})


def test_list_membership_equality():
    assert matches(DOC, {"tags": "vision"})
    assert not matches(DOC, {"tags": "nlp"})


def test_and_or_nor():
    assert matches(DOC, {"$and": [{"user": "alice"}, {"gpus": 4}]})
    assert matches(DOC, {"$or": [{"user": "bob"}, {"gpus": 4}]})
    assert matches(DOC, {"$nor": [{"user": "bob"}, {"gpus": 99}]})
    assert not matches(DOC, {"$and": [{"user": "alice"}, {"gpus": 99}]})


def test_not_operator():
    assert matches(DOC, {"gpus": {"$not": {"$gt": 10}}})
    assert not matches(DOC, {"gpus": {"$not": {"$gt": 2}}})


def test_unknown_operator_raises():
    with pytest.raises(StoreError):
        matches(DOC, {"gpus": {"$regex": "x"}})
    with pytest.raises(StoreError):
        matches(DOC, {"$xor": []})


def test_incomparable_types_do_not_match():
    assert not matches(DOC, {"user": {"$gt": 3}})


def test_update_set_and_unset():
    doc = {"_id": 1, "a": 1, "b": {"c": 2}}
    apply_update(doc, {"$set": {"b.c": 3, "d": 4}})
    assert doc["b"]["c"] == 3 and doc["d"] == 4
    apply_update(doc, {"$unset": {"a": "", "b.c": ""}})
    assert "a" not in doc and "c" not in doc["b"]


def test_update_inc_creates_and_increments():
    doc = {"_id": 1}
    apply_update(doc, {"$inc": {"count": 2}})
    apply_update(doc, {"$inc": {"count": 3}})
    assert doc["count"] == 5


def test_update_push_and_pull():
    doc = {"_id": 1}
    apply_update(doc, {"$push": {"history": "PENDING"}})
    apply_update(doc, {"$push": {"history": "RUNNING"}})
    assert doc["history"] == ["PENDING", "RUNNING"]
    apply_update(doc, {"$pull": {"history": "PENDING"}})
    assert doc["history"] == ["RUNNING"]


def test_update_replacement_preserves_id():
    doc = {"_id": "x", "old": 1}
    apply_update(doc, {"new": 2})
    assert doc == {"_id": "x", "new": 2}


def test_update_cannot_mix_operators_and_replacement():
    with pytest.raises(StoreError):
        apply_update({"_id": 1}, {"$set": {"a": 1}, "b": 2})


def test_update_unknown_operator():
    with pytest.raises(StoreError):
        apply_update({"_id": 1}, {"$rename": {"a": "b"}})


def test_sort_single_and_multi_key():
    docs = [{"a": 2, "b": "x"}, {"a": 1, "b": "z"}, {"a": 2, "b": "a"}]
    by_a = sort_documents(docs, [("a", 1)])
    assert [d["a"] for d in by_a] == [1, 2, 2]
    multi = sort_documents(docs, [("a", -1), ("b", 1)])
    assert [(d["a"], d["b"]) for d in multi] == [(2, "a"), (2, "x"), (1, "z")]


def test_sort_missing_values_first():
    docs = [{"a": 1}, {}, {"a": 0}]
    ordered = sort_documents(docs, [("a", 1)])
    assert ordered[0] == {}
