"""Tests for MongoDB replica-set failover behaviour."""

import pytest

from repro.errors import StoreError
from repro.mongo import MongoClient, MongoDatabase, MongoReplicaSet
from repro.sim import Environment


def make_rs(secondaries=2):
    env = Environment()
    rs = MongoReplicaSet(env, secondaries=secondaries)
    return env, rs


def test_writes_replicate_to_secondaries():
    env, rs = make_rs()
    rs.collection("jobs").insert_one({"_id": "j1", "status": "RUNNING"})
    env.run(until=1.0)
    for member in rs.members:
        assert member.collection("jobs").find_one({"_id": "j1"}) is not None


def test_replication_has_lag():
    env, rs = make_rs()
    rs.collection("jobs").insert_one({"_id": "j1"})
    # Before the replication interval elapses the secondary is empty.
    assert rs.members[1].collection("jobs").count() == 0
    env.run(until=1.0)
    assert rs.members[1].collection("jobs").count() == 1


def test_failover_promotes_secondary():
    env, rs = make_rs()
    rs.collection("jobs").insert_one({"_id": "j1"})
    env.run(until=1.0)
    rs.crash_member(0)
    assert rs.primary_index != 0
    # Data survives on the new primary.
    assert rs.collection("jobs").find_one({"_id": "j1"}) is not None


def test_writes_continue_after_failover():
    env, rs = make_rs()
    rs.collection("jobs").insert_one({"_id": "before"})
    env.run(until=1.0)
    rs.crash_member(0)
    rs.collection("jobs").insert_one({"_id": "after"})
    env.run(until=env.now + 1.0)
    live = [i for i in range(3) if i != 0]
    for i in live:
        coll = rs.members[i].collection("jobs")
        assert coll.count() == 2


def test_restarted_member_resyncs():
    env, rs = make_rs()
    rs.crash_member(2)
    rs.collection("jobs").insert_one({"_id": "j1"})
    env.run(until=1.0)
    rs.restart_member(2)
    env.run(until=env.now + 1.0)
    assert rs.members[2].collection("jobs").count() == 1


def test_total_outage_raises():
    env, rs = make_rs(secondaries=1)
    rs.crash_member(0)
    rs.crash_member(1)
    with pytest.raises(StoreError):
        _ = rs.primary


def test_negative_secondaries_rejected():
    with pytest.raises(StoreError):
        MongoReplicaSet(Environment(), secondaries=-1)


def test_client_over_database_and_replica_set():
    env = Environment()
    for backend in (MongoDatabase(), MongoReplicaSet(env)):
        client = MongoClient(env, backend)

        def flow():
            yield client.insert_one("jobs", {"_id": "a", "v": 1})
            yield client.update_one("jobs", {"_id": "a"},
                                    {"$set": {"v": 2}})
            doc = yield client.find_one("jobs", {"_id": "a"})
            count = yield client.count("jobs")
            return doc["v"], count

        assert env.run_until_complete(
            env.process(flow()), limit=env.now + 10) == (2, 1)


def test_client_latency_applied():
    env = Environment()
    client = MongoClient(env, MongoDatabase(), latency_s=0.02)

    def flow():
        yield client.insert_one("c", {"x": 1})
        return env.now

    assert env.run_until_complete(env.process(flow())) == pytest.approx(0.02)

# -- delayed elections (chaos realism) -------------------------------------


def test_election_delay_opens_primaryless_window():
    from repro.errors import StoreUnavailableError

    env = Environment()
    rs = MongoReplicaSet(env, secondaries=2, election_delay_s=5.0)
    rs.collection("jobs").insert_one({"_id": "j1"})
    env.run(until=1.0)
    rs.crash_member(0)
    assert not rs.has_primary
    with pytest.raises(StoreUnavailableError):
        rs.primary
    env.run(until=1.0 + 5.5)
    assert rs.has_primary
    assert rs.primary_index != 0
    assert len(rs.failover_log) == 1
    lost_at, elected_at, new_primary = rs.failover_log[0]
    assert elected_at - lost_at == pytest.approx(5.0)
    assert new_primary == rs.primary_index


def test_election_delay_restart_cancels_pending_election():
    env = Environment()
    rs = MongoReplicaSet(env, secondaries=2, election_delay_s=5.0)
    rs.crash_member(0)

    def restart():
        yield env.timeout(2.0)
        rs.restart_member(0)

    env.process(restart())
    env.run(until=20.0)
    # The old primary came back inside the election window: it stays
    # primary and no failover is recorded.
    assert rs.primary_index == 0
    assert rs.failover_log == []


def test_failover_under_concurrent_writes_loses_nothing():
    """Writers retrying through a delayed election land every document."""
    from repro.resilience import RetryPolicy
    from repro.sim import RngRegistry

    env = Environment()
    rs = MongoReplicaSet(env, secondaries=2, election_delay_s=2.0)
    client = MongoClient(env, rs, rng=RngRegistry(7),
                         retry=RetryPolicy(max_attempts=8, base_delay_s=0.2,
                                           max_delay_s=2.0))
    written = []

    def writer(index):
        def one_write():
            yield env.timeout(index * 0.5)
            yield client.insert_one("jobs", {"_id": f"j{index}"})
            written.append(index)
        return one_write

    for index in range(12):
        env.process(writer(index)(), name=f"writer-{index}")

    def chaos():
        yield env.timeout(1.5)
        rs.crash_member(rs.primary_index)
        yield env.timeout(3.0)
        rs.crash_member(rs.primary_index)

    env.process(chaos(), name="chaos")
    env.run(until=60.0)
    assert sorted(written) == list(range(12))
    docs = rs.collection("jobs").count()
    assert docs == 12
    assert len(rs.failover_log) == 2
