"""Tests for MongoDB replica-set failover behaviour."""

import pytest

from repro.errors import StoreError
from repro.mongo import MongoClient, MongoDatabase, MongoReplicaSet
from repro.sim import Environment


def make_rs(secondaries=2):
    env = Environment()
    rs = MongoReplicaSet(env, secondaries=secondaries)
    return env, rs


def test_writes_replicate_to_secondaries():
    env, rs = make_rs()
    rs.collection("jobs").insert_one({"_id": "j1", "status": "RUNNING"})
    env.run(until=1.0)
    for member in rs.members:
        assert member.collection("jobs").find_one({"_id": "j1"}) is not None


def test_replication_has_lag():
    env, rs = make_rs()
    rs.collection("jobs").insert_one({"_id": "j1"})
    # Before the replication interval elapses the secondary is empty.
    assert rs.members[1].collection("jobs").count() == 0
    env.run(until=1.0)
    assert rs.members[1].collection("jobs").count() == 1


def test_failover_promotes_secondary():
    env, rs = make_rs()
    rs.collection("jobs").insert_one({"_id": "j1"})
    env.run(until=1.0)
    rs.crash_member(0)
    assert rs.primary_index != 0
    # Data survives on the new primary.
    assert rs.collection("jobs").find_one({"_id": "j1"}) is not None


def test_writes_continue_after_failover():
    env, rs = make_rs()
    rs.collection("jobs").insert_one({"_id": "before"})
    env.run(until=1.0)
    rs.crash_member(0)
    rs.collection("jobs").insert_one({"_id": "after"})
    env.run(until=env.now + 1.0)
    live = [i for i in range(3) if i != 0]
    for i in live:
        coll = rs.members[i].collection("jobs")
        assert coll.count() == 2


def test_restarted_member_resyncs():
    env, rs = make_rs()
    rs.crash_member(2)
    rs.collection("jobs").insert_one({"_id": "j1"})
    env.run(until=1.0)
    rs.restart_member(2)
    env.run(until=env.now + 1.0)
    assert rs.members[2].collection("jobs").count() == 1


def test_total_outage_raises():
    env, rs = make_rs(secondaries=1)
    rs.crash_member(0)
    rs.crash_member(1)
    with pytest.raises(StoreError):
        _ = rs.primary


def test_negative_secondaries_rejected():
    with pytest.raises(StoreError):
        MongoReplicaSet(Environment(), secondaries=-1)


def test_client_over_database_and_replica_set():
    env = Environment()
    for backend in (MongoDatabase(), MongoReplicaSet(env)):
        client = MongoClient(env, backend)

        def flow():
            yield client.insert_one("jobs", {"_id": "a", "v": 1})
            yield client.update_one("jobs", {"_id": "a"},
                                    {"$set": {"v": 2}})
            doc = yield client.find_one("jobs", {"_id": "a"})
            count = yield client.count("jobs")
            return doc["v"], count

        assert env.run_until_complete(
            env.process(flow()), limit=env.now + 10) == (2, 1)


def test_client_latency_applied():
    env = Environment()
    client = MongoClient(env, MongoDatabase(), latency_s=0.02)

    def flow():
        yield client.insert_one("c", {"x": 1})
        return env.now

    assert env.run_until_complete(env.process(flow())) == pytest.approx(0.02)
