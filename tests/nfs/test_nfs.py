"""Tests for the NFS volume and its load-sensitive provisioner."""

import pytest

from repro.errors import ProvisioningError
from repro.nfs import NFSProvisioner, NFSVolume, VolumePool
from repro.sim import Environment, RngRegistry


def test_volume_write_read_append():
    vol = NFSVolume("v")
    vol.write("learner-0/exit", "0")
    vol.append("learner-0/log", "line1\n")
    vol.append("learner-0/log", "line2\n")
    assert vol.read("learner-0/exit") == "0"
    assert vol.read("learner-0/log") == "line1\nline2\n"
    assert vol.read("missing") is None


def test_volume_listdir_and_delete():
    vol = NFSVolume("v")
    vol.write("a/1", "x")
    vol.write("a/2", "y")
    vol.write("b/1", "z")
    assert vol.listdir("a/") == ["a/1", "a/2"]
    assert vol.delete("a/1")
    assert not vol.delete("a/1")
    assert vol.exists("a/2")


def test_volume_used_bytes():
    vol = NFSVolume("v")
    vol.write("f", "12345")
    assert vol.used_bytes() == 5


def test_released_volume_rejects_io():
    vol = NFSVolume("v")
    vol.write("f", "x")
    vol.release()
    with pytest.raises(RuntimeError):
        vol.read("f")
    with pytest.raises(RuntimeError):
        vol.write("f", "y")


def test_provision_single_volume_base_latency():
    env = Environment()
    prov = NFSProvisioner(env, RngRegistry(0), base_latency_s=4.0)

    def flow():
        vol = yield prov.provision()
        return vol, env.now

    vol, when = env.run_until_complete(env.process(flow()))
    assert isinstance(vol, NFSVolume)
    assert when == pytest.approx(4.0)
    assert prov.provisioned == 1


def test_provision_latency_grows_with_load():
    env = Environment()
    prov = NFSProvisioner(env, RngRegistry(0), base_latency_s=4.0,
                          per_request_penalty_s=2.0)
    finish_times = []

    def flow():
        yield prov.provision()
        finish_times.append(env.now)

    for _ in range(3):
        env.process(flow())
    env.run()
    # First request pays 4s, second 6s, third 8s.
    assert finish_times == [pytest.approx(4.0), pytest.approx(6.0),
                            pytest.approx(8.0)]


def test_provisioning_fails_under_overload():
    env = Environment()
    prov = NFSProvisioner(env, RngRegistry(0), overload_threshold=5,
                          overload_failure_probability=0.8)
    outcomes = {"ok": 0, "fail": 0}

    def flow():
        try:
            yield prov.provision()
            outcomes["ok"] += 1
        except ProvisioningError:
            outcomes["fail"] += 1

    for _ in range(40):
        env.process(flow())
    env.run()
    assert outcomes["fail"] > 10
    assert prov.failures == outcomes["fail"]


def test_no_failures_below_threshold():
    env = Environment()
    prov = NFSProvisioner(env, RngRegistry(0), overload_threshold=10,
                          overload_failure_probability=1.0)
    failures = []

    def flow():
        try:
            yield prov.provision()
        except ProvisioningError:
            failures.append(1)

    for _ in range(5):
        env.process(flow())
    env.run()
    assert not failures


def test_pool_acquire_is_fast_when_warm():
    env = Environment()
    prov = NFSProvisioner(env, RngRegistry(0), base_latency_s=4.0)
    pool = VolumePool(env, prov, target_size=3, refill_interval_s=1.0,
                      acquire_latency_s=0.5)
    env.run(until=60)  # let the pool fill
    assert pool.available == 3
    start = env.now

    def flow():
        vol = yield pool.acquire()
        return vol, env.now - start

    vol, elapsed = env.run_until_complete(env.process(flow()))
    assert isinstance(vol, NFSVolume)
    assert elapsed == pytest.approx(0.5)
    assert pool.pool_hits == 1


def test_pool_falls_back_to_provisioner_when_empty():
    env = Environment()
    prov = NFSProvisioner(env, RngRegistry(0), base_latency_s=4.0)
    pool = VolumePool(env, prov, target_size=2, refill_interval_s=1000.0)
    start = env.now

    def flow():
        yield pool.acquire()
        return env.now - start

    elapsed = env.run_until_complete(env.process(flow()), limit=500)
    assert elapsed >= 4.0
    assert pool.pool_misses == 1


def test_pool_refills_over_time():
    env = Environment()
    prov = NFSProvisioner(env, RngRegistry(0), base_latency_s=1.0)
    pool = VolumePool(env, prov, target_size=2, refill_interval_s=5.0)
    env.run(until=30)
    assert pool.available == 2

    def flow():
        yield pool.acquire()

    env.run_until_complete(env.process(flow()), limit=100)
    env.run(until=env.now + 30)
    assert pool.available == 2  # refilled
