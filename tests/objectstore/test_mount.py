"""Tests for the s3fs-style mount driver and its cache."""

import pytest

from repro.objectstore import BucketMount, MountCache, ObjectStorageService
from repro.sim import Environment


def make_mount(cache_bytes=None, bandwidth=1e6):
    env = Environment()
    service = ObjectStorageService(env, bandwidth_bps=bandwidth,
                                   request_latency_s=0.0)
    bucket = service.create_bucket("data")
    cache = MountCache(cache_bytes) if cache_bytes else None
    mount = BucketMount(env, service, "data", cache=cache)
    return env, service, bucket, mount


def test_read_streams_object():
    env, _service, bucket, mount = make_mount()
    bucket.put("f", 1e6)

    def flow():
        obj = yield mount.read("f")
        return obj.key, env.now

    key, when = env.run_until_complete(env.process(flow()))
    assert key == "f"
    assert when == pytest.approx(1.0)


def test_second_read_hits_cache_and_is_fast():
    env, _service, bucket, mount = make_mount(cache_bytes=1e7)
    bucket.put("f", 1e6)

    def flow():
        yield mount.read("f")
        first = env.now
        yield mount.read("f")
        return first, env.now

    first, second = env.run_until_complete(env.process(flow()))
    assert first == pytest.approx(1.0)
    assert second - first == pytest.approx(0.001)
    assert mount.cache.hits == 1


def test_cache_evicts_lru():
    cache = MountCache(100)
    cache.admit("b", "a", 60)
    cache.admit("b", "b", 30)
    assert cache.lookup("b", "a")  # touch a: b becomes LRU
    cache.admit("b", "c", 30)  # evicts b
    assert cache.lookup("b", "a")
    assert not cache.lookup("b", "b")
    assert cache.lookup("b", "c")
    assert cache.used_bytes <= 100


def test_object_larger_than_cache_bypasses():
    cache = MountCache(100)
    cache.admit("b", "huge", 500)
    assert not cache.lookup("b", "huge")
    assert cache.used_bytes == 0


def test_cache_hit_rate():
    cache = MountCache(1000)
    cache.admit("b", "x", 10)
    cache.lookup("b", "x")
    cache.lookup("b", "y")
    assert cache.hit_rate == pytest.approx(0.5)


def test_cache_shared_across_mounts():
    env, service, bucket, mount1 = make_mount(cache_bytes=1e7)
    bucket.put("f", 1e6)
    mount2 = BucketMount(env, service, "data", cache=mount1.cache)

    def flow():
        yield mount1.read("f")
        t_warm = env.now
        yield mount2.read("f")
        return t_warm, env.now

    warm, second = env.run_until_complete(env.process(flow()))
    assert second - warm == pytest.approx(0.001)


def test_write_uploads_and_invalidates_cache():
    env, service, bucket, mount = make_mount(cache_bytes=1e7)
    bucket.put("ckpt", 1e5)

    def flow():
        yield mount.read("ckpt")  # warm the cache
        yield mount.write("ckpt", 2e5)
        obj = yield mount.read("ckpt")  # must re-stream, not hit stale cache
        return obj.size_bytes

    assert env.run_until_complete(env.process(flow())) == 2e5
    assert mount.cache.hits == 0 or mount.cache.misses >= 2


def test_bytes_read_accounting():
    env, _service, bucket, mount = make_mount(cache_bytes=1e7)
    bucket.put("f", 1000)

    def flow():
        yield mount.read("f")
        yield mount.read("f")

    env.run_until_complete(env.process(flow()))
    assert mount.bytes_read == 2000
    assert mount.reads == 2


def test_listdir_passes_through():
    _env, _service, bucket, mount = make_mount()
    bucket.put("ckpt/0001", 1)
    bucket.put("ckpt/0002", 1)
    assert [o.key for o in mount.listdir("ckpt/")] == ["ckpt/0001",
                                                       "ckpt/0002"]
