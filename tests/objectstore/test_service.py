"""Unit tests for the object storage service."""

import pytest

from repro.errors import (
    AccessDeniedError,
    NoSuchBucketError,
    NoSuchObjectError,
    ObjectStorageError,
)
from repro.objectstore import ObjectStorageService
from repro.sim import Environment


@pytest.fixture
def oss():
    env = Environment()
    service = ObjectStorageService(env, bandwidth_bps=1e6,
                                   request_latency_s=0.0)
    return env, service


def test_create_and_get_bucket(oss):
    _env, service = oss
    service.create_bucket("training-data")
    assert service.bucket("training-data").name == "training-data"


def test_missing_bucket_raises(oss):
    _env, service = oss
    with pytest.raises(NoSuchBucketError):
        service.bucket("ghost")


def test_put_get_object(oss):
    _env, service = oss
    bucket = service.create_bucket("b")
    bucket.put("data.bin", 1000, payload="contents")
    obj = bucket.get("data.bin")
    assert obj.size_bytes == 1000
    assert obj.payload == "contents"


def test_missing_object_raises(oss):
    _env, service = oss
    service.create_bucket("b")
    with pytest.raises(NoSuchObjectError):
        service.bucket("b").get("ghost")


def test_negative_size_rejected(oss):
    _env, service = oss
    with pytest.raises(ObjectStorageError):
        service.create_bucket("b").put("x", -1)


def test_etag_changes_on_overwrite(oss):
    _env, service = oss
    bucket = service.create_bucket("b")
    first = bucket.put("k", 10)
    second = bucket.put("k", 20)
    assert second.etag > first.etag


def test_list_with_prefix(oss):
    _env, service = oss
    bucket = service.create_bucket("b")
    bucket.put("ckpt/1", 1)
    bucket.put("ckpt/2", 1)
    bucket.put("logs/1", 1)
    assert [o.key for o in bucket.list("ckpt/")] == ["ckpt/1", "ckpt/2"]


def test_download_takes_bandwidth_time(oss):
    env, service = oss
    service.create_bucket("b").put("data", 1e6)  # 1 MB over 1 MB/s

    def flow():
        yield service.download("b", "data")
        return env.now

    assert env.run_until_complete(env.process(flow())) == pytest.approx(1.0)


def test_concurrent_downloads_share_bandwidth(oss):
    env, service = oss
    bucket = service.create_bucket("b")
    bucket.put("a", 1e6)
    bucket.put("b", 1e6)
    times = {}

    def flow(key):
        yield service.download("b", key)
        times[key] = env.now

    env.process(flow("a"))
    env.process(flow("b"))
    env.run(until=10)
    assert times["a"] == pytest.approx(2.0)
    assert times["b"] == pytest.approx(2.0)


def test_upload_creates_object(oss):
    env, service = oss
    service.create_bucket("results")

    def flow():
        obj = yield service.upload("results", "model.bin", 5e5)
        return obj

    obj = env.run_until_complete(env.process(flow()))
    assert obj.size_bytes == 5e5
    assert "model.bin" in service.bucket("results")


def test_credentials_scope_buckets(oss):
    _env, service = oss
    service.create_bucket("mine")
    service.create_bucket("theirs")
    service.issue_credentials("token-1", ["mine"])
    service.bucket("mine").put("k", 1)
    # Allowed.
    service.download("mine", "k", token="token-1")
    # Denied bucket.
    with pytest.raises(AccessDeniedError):
        service.download("theirs", "k", token="token-1")
    # Unknown token.
    with pytest.raises(AccessDeniedError):
        service.download("mine", "k", token="bogus")


def test_wildcard_credentials(oss):
    _env, service = oss
    service.create_bucket("any")
    service.create_bucket("other")
    creds = service.issue_credentials("admin")
    assert creds.allows("any") and creds.allows("other")


def test_download_counters(oss):
    env, service = oss
    service.create_bucket("b").put("k", 10)

    def flow():
        yield service.download("b", "k")
        yield service.upload("b", "k2", 10)

    env.run_until_complete(env.process(flow()))
    assert service.downloads_started == 1
    assert service.uploads_started == 1
