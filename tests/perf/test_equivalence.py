"""The fast paths must be observably invisible.

Every optimization behind :func:`repro.perf.flags.optimizations_enabled`
is run here twice — enabled, then with ``REPRO_PERF_DISABLE=1`` — over
the perf bench scenarios and two chaos scenarios.  Audit logs, end
states and post-run RNG stream positions must be byte-identical; only
the ops counters (watcher visits, predicate evaluations) may differ.

The flag is read at component construction time, so flipping the
environment variable between constructions inside one test process is
the supported way to build both variants.
"""

import pytest

from benchmarks.perf.scenarios import SCENARIOS
from repro.chaos import ChaosEngine, InjectionStep, Scenario
from repro.perf import DISABLE_ENV_VAR

ETCD_MONGO = Scenario(
    name="equiv-etcd-mongo",
    description="etcd leader kill + mongo failover under job churn",
    steps=(
        InjectionStep(at_s=30.0, kind="mongo-primary-kill",
                      duration_s=20.0),
        InjectionStep(at_s=60.0, kind="etcd-leader-kill",
                      duration_s=15.0),
    ),
    horizon_s=240.0,
    settle_s=120.0,
    jobs=2,
    job_interarrival_s=10.0,
    job_iterations=20,
)

NODE_FAILURE = Scenario(
    name="equiv-node-failure",
    description="node failure + network partition under job churn",
    steps=(
        InjectionStep(at_s=40.0, kind="node-crash", target="node-K80-0",
                      duration_s=30.0),
        InjectionStep(at_s=90.0, kind="etcd-partition",
                      duration_s=20.0),
    ),
    horizon_s=260.0,
    settle_s=120.0,
    jobs=2,
    job_interarrival_s=15.0,
    job_iterations=15,
)


def run_both(monkeypatch, build_and_run):
    """``build_and_run()`` once per mode; returns (optimized, baseline)."""
    monkeypatch.delenv(DISABLE_ENV_VAR, raising=False)
    optimized = build_and_run()
    monkeypatch.setenv(DISABLE_ENV_VAR, "1")
    baseline = build_and_run()
    return optimized, baseline


# -- bench scenarios --------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_bench_scenario_state_is_mode_independent(monkeypatch, name):
    func, smoke_kwargs, _full = SCENARIOS[name]
    optimized, baseline = run_both(
        monkeypatch, lambda: func(**smoke_kwargs))
    assert optimized["state"] == baseline["state"]
    assert optimized["params"] == baseline["params"]


@pytest.mark.parametrize("name,metric", [("etcd", "watcher_visits"),
                                         ("sched", "filter_evals")])
def test_fast_paths_cut_ops_at_least_3x(monkeypatch, name, metric):
    func, smoke_kwargs, _full = SCENARIOS[name]
    optimized, baseline = run_both(
        monkeypatch, lambda: func(**smoke_kwargs))
    assert baseline["ops"][metric] >= 3 * optimized["ops"][metric]


# -- chaos scenarios --------------------------------------------------------


@pytest.mark.parametrize("scenario", [ETCD_MONGO, NODE_FAILURE],
                         ids=lambda s: s.name)
def test_chaos_run_is_mode_independent(monkeypatch, scenario):
    def build_and_run():
        engine = ChaosEngine(scenario, seed=7)
        report = engine.run()
        # Post-run RNG positions: if any fast path consumed or skipped
        # a draw, the streams' next outputs diverge here.
        rng_probe = [engine.platform.rng.stream(name).random()
                     for name in ("scheduler", "chaos:arrivals",
                                  "learner-setup")]
        return report, rng_probe

    (report_opt, rng_opt), (report_base, rng_base) = run_both(
        monkeypatch, build_and_run)
    assert report_opt.audit_lines == report_base.audit_lines
    assert report_opt.end_state() == report_base.end_state()
    assert report_opt.counters == report_base.counters
    assert rng_opt == rng_base


@pytest.mark.parametrize("scenario", [ETCD_MONGO, NODE_FAILURE],
                         ids=lambda s: s.name)
@pytest.mark.parametrize("tiebreak_seed", [977, 1301])
def test_chaos_equivalence_holds_under_perturbation(monkeypatch, scenario,
                                                    tiebreak_seed):
    """The exhaustive-default scheduler (plus owner index, score cache,
    timer wheel, node-indexed fanout) stays byte-identical to the
    reference implementations under perturbed same-instant tie-breaks —
    the --perturb property, applied across the mode boundary.  Any fast
    path that silently depended on heap pop order, listener scan order,
    or store scan order fails here."""
    def build_and_run():
        engine = ChaosEngine(scenario, seed=7,
                             tiebreak_seed=tiebreak_seed)
        report = engine.run()
        rng_probe = [engine.platform.rng.stream(name).random()
                     for name in ("scheduler", "chaos:arrivals",
                                  "learner-setup")]
        return report, rng_probe

    (report_opt, rng_opt), (report_base, rng_base) = run_both(
        monkeypatch, build_and_run)
    assert report_opt.audit_lines == report_base.audit_lines
    assert report_opt.end_state() == report_base.end_state()
    assert report_opt.counters == report_base.counters
    assert rng_opt == rng_base
