"""Unit tests for the deterministic kernel profiler and perf flags."""

from repro.perf import DISABLE_ENV_VAR, KernelProfiler, profile
from repro.perf.flags import optimizations_enabled
from repro.sim import Environment, RngRegistry


def churn(env, rng, processes=5, steps=20):
    def worker(index):
        for _ in range(steps):
            yield env.timeout(rng.uniform(0.1, 1.0))

    for index in range(processes):
        env.process(worker(index), name=f"churn:{index}")


def test_no_profiler_attached_by_default():
    env = Environment()
    assert env._profiler is None


def test_profiler_counts_events_and_sites():
    env = Environment()
    profiler = profile(env)
    churn(env, RngRegistry(0).stream("x"))
    env.run()
    report = profiler.report()
    assert report["events_processed"] == report["events_scheduled"]
    assert report["events_processed"] >= 100
    assert report["event_types"].get("Timeout", 0) >= 100
    assert report["peak_heap"] >= 5
    # Processes group under their name family.
    assert "process:churn" in report["callback_sites"]
    assert report["callback_sites"]["process:churn"]["calls"] >= 100


def test_report_is_deterministic_across_runs():
    def one_run():
        env = Environment()
        profiler = profile(env)
        churn(env, RngRegistry(3).stream("x"))
        env.run()
        return profiler.report()

    assert one_run() == one_run()


def test_profiling_does_not_change_the_schedule():
    def end_time(with_profiler):
        env = Environment()
        if with_profiler:
            profile(env)
        churn(env, RngRegistry(5).stream("x"))
        env.run()
        return env.now, env.events_processed

    assert end_time(True) == end_time(False)


def test_profile_returns_existing_profiler():
    env = Environment()
    first = profile(env)
    assert profile(env) is first


def test_detach_stops_attribution():
    env = Environment()
    profiler = KernelProfiler(env)
    profiler.detach()
    assert env._profiler is None
    churn(env, RngRegistry(0).stream("x"), processes=1, steps=3)
    env.run()
    assert profiler.report()["event_types"] == {}


def test_flag_reads_environment(monkeypatch):
    monkeypatch.delenv(DISABLE_ENV_VAR, raising=False)
    assert optimizations_enabled()
    monkeypatch.setenv(DISABLE_ENV_VAR, "1")
    assert not optimizations_enabled()
    monkeypatch.setenv(DISABLE_ENV_VAR, "0")
    assert optimizations_enabled()


def test_callback_pool_is_bounded_and_flag_gated(monkeypatch):
    monkeypatch.delenv(DISABLE_ENV_VAR, raising=False)
    env = Environment()
    churn(env, RngRegistry(0).stream("x"))
    env.run()
    assert env._cb_pool is not None
    assert len(env._cb_pool) <= env._CB_POOL_CAP
    monkeypatch.setenv(DISABLE_ENV_VAR, "1")
    assert Environment()._cb_pool is None
