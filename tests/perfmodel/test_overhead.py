"""Tests for the platform-overhead model (Tables 1 and 2 shapes)."""

import random

import pytest

from repro.perfmodel import (
    INCEPTIONV3_TF,
    OverheadComponents,
    P100,
    RESNET50_TF,
    V100,
    VGG16_CAFFE,
    ffdl_throughput,
    images_per_sec,
    overhead_vs_bare_metal,
    overhead_vs_dgx1,
)

TABLE1_CONFIGS = [(1, 1), (1, 2), (1, 4), (2, 1), (2, 2), (2, 4),
                  (4, 2), (4, 4)]


def test_table1_overhead_bounded_at_five_percent_ish():
    """Table 1: FfDL vs bare metal <= ~5% for every config/model."""
    for model in (VGG16_CAFFE, INCEPTIONV3_TF):
        for learners, gpus in TABLE1_CONFIGS:
            ov = overhead_vs_bare_metal(model, "K80", 4, learners, gpus)
            assert 0.0 < ov < 0.06, (model.name, learners, gpus)


def test_overhead_grows_with_distribution_footprint():
    small = overhead_vs_bare_metal(INCEPTIONV3_TF, V100, 16, 1, 1)
    large = overhead_vs_bare_metal(INCEPTIONV3_TF, V100, 16, 4, 4)
    assert large > small


def test_overhead_noise_is_seeded_and_bounded():
    values = [overhead_vs_bare_metal(VGG16_CAFFE, P100, 4, 2, 2,
                                     rng=random.Random(s))
              for s in range(30)]
    assert len(set(values)) > 10  # noise present
    assert all(0.0 < v < 0.08 for v in values)
    again = [overhead_vs_bare_metal(VGG16_CAFFE, P100, 4, 2, 2,
                                    rng=random.Random(s))
             for s in range(30)]
    assert values == again  # deterministic given seeds


def test_table2_dgx_gap_shape():
    """Table 2: degradation vs DGX-1 is modest (<= ~15%), grows with GPU
    count, and is largest for VGG-16 / smallest for InceptionV3."""
    from repro.perfmodel import VGG16_TF
    gaps = {}
    for model in (INCEPTIONV3_TF, RESNET50_TF, VGG16_TF):
        one = overhead_vs_dgx1(model, P100, 16, 1)
        two = overhead_vs_dgx1(model, P100, 16, 2)
        assert 0.0 < one < two < 0.16, model.name
        gaps[model.name] = (one, two)
    assert gaps["vgg16"][0] > gaps["inceptionv3"][0]
    assert gaps["vgg16"][1] > gaps["inceptionv3"][1]


def test_table2_published_points_within_tolerance():
    """Published: Inception 3.3%/10.1%, ResNet 7.1%/10.5%, VGG 7.8%/13.7%.
    We require each reproduced point within 3.5 percentage points."""
    from repro.perfmodel import VGG16_TF
    published = {
        (INCEPTIONV3_TF.name, 1): 0.033, (INCEPTIONV3_TF.name, 2): 0.1006,
        (RESNET50_TF.name, 1): 0.0707, (RESNET50_TF.name, 2): 0.1053,
        (VGG16_TF.name, 1): 0.0784, (VGG16_TF.name, 2): 0.1369,
    }
    for model in (INCEPTIONV3_TF, RESNET50_TF, VGG16_TF):
        for n in (1, 2):
            got = overhead_vs_dgx1(model, P100, 16, n)
            assert abs(got - published[(model.name, n)]) < 0.035, \
                (model.name, n, got)


def test_ffdl_throughput_below_bare_metal():
    from repro.perfmodel import distributed_images_per_sec
    bare = distributed_images_per_sec(RESNET50_TF, V100, 2, 2, 16)
    ffdl = ffdl_throughput(RESNET50_TF, V100, 16, 2, 2)
    assert ffdl < bare
    assert ffdl > 0.9 * bare


def test_components_can_be_toggled():
    no_storage = OverheadComponents(storage_driver=0.0,
                                    noise_half_width=0.0)
    baseline = OverheadComponents(noise_half_width=0.0)
    assert no_storage.total(1, 1) < baseline.total(1, 1)


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        OverheadComponents().total(0, 1)
