"""Tests that the throughput model reproduces the paper's published
calibration points (Tables 4 and 6) and behaves sanely elsewhere."""

import pytest

from repro.perfmodel import (
    DGX1_SERVER, INCEPTIONV3_TF, K80, P100, RESNET50_TF, V100, VGG16_CAFFE,
    VGG16_TF, distributed_images_per_sec, gpu_spec, gpu_utilization,
    images_per_sec, iteration_time_s, model_spec, saturation_threads,
    streaming_demand_bps,
)


def test_table4_vgg_caffe_p100_v100():
    """Table 4: VGG-16/Caffe batch 75 -> ~66 img/s (P100), ~107 (V100)."""
    for threads in (2, 4, 8):
        p100 = images_per_sec(VGG16_CAFFE, P100, threads, batch_size=75)
        assert p100 == pytest.approx(66.0, rel=0.03), threads
    for threads in (2, 8, 16, 28):
        v100 = images_per_sec(VGG16_CAFFE, V100, threads, batch_size=75)
        assert v100 == pytest.approx(107.0, rel=0.03), threads


def test_table4_caffe_saturates_by_4_threads():
    t2 = images_per_sec(VGG16_CAFFE, P100, 2)
    t28 = images_per_sec(VGG16_CAFFE, P100, 28)
    assert (t28 - t2) / t28 < 0.01


def test_table6_tf_v100_throughputs_at_16_threads():
    """Table 6: Inception ~218, ResNet-50 ~345, VGG-16 ~216 img/s."""
    assert images_per_sec(INCEPTIONV3_TF, V100, 16, batch_size=128) == \
        pytest.approx(217.8, rel=0.02)
    assert images_per_sec(RESNET50_TF, V100, 16, batch_size=128) == \
        pytest.approx(345.3, rel=0.02)
    assert images_per_sec(VGG16_TF, V100, 16, batch_size=128) == \
        pytest.approx(216.2, rel=0.02)


def test_table6_inception_benefits_up_to_28_threads():
    t16 = images_per_sec(INCEPTIONV3_TF, V100, 16)
    t28 = images_per_sec(INCEPTIONV3_TF, V100, 28)
    assert t28 > t16
    assert t28 == pytest.approx(223.6, rel=0.02)


def test_table6_gpu_utilizations():
    assert gpu_utilization(INCEPTIONV3_TF, 16) == pytest.approx(0.868,
                                                                abs=0.02)
    assert gpu_utilization(RESNET50_TF, 16) == pytest.approx(0.933,
                                                             abs=0.02)
    assert gpu_utilization(VGG16_TF, 16) == pytest.approx(0.987, abs=0.02)


def test_gpu_generation_ordering():
    for model in (VGG16_CAFFE, RESNET50_TF, INCEPTIONV3_TF):
        k80 = images_per_sec(model, K80, 16)
        p100 = images_per_sec(model, P100, 16)
        v100 = images_per_sec(model, V100, 16)
        assert k80 < p100 < v100


def test_multi_gpu_scaling_sublinear():
    one = images_per_sec(RESNET50_TF, V100, 16, n_gpus=1)
    two = images_per_sec(RESNET50_TF, V100, 16, n_gpus=2)
    four = images_per_sec(RESNET50_TF, V100, 16, n_gpus=4)
    assert one < two < four
    assert two < 2 * one
    assert four < 4 * one


def test_dgx1_faster_than_pcie():
    pcie = images_per_sec(VGG16_TF, P100, 16, n_gpus=2)
    dgx = images_per_sec(VGG16_TF, P100, 16, n_gpus=2, server=DGX1_SERVER)
    assert dgx > pcie


def test_distributed_scaling_with_learner_penalty():
    single = distributed_images_per_sec(RESNET50_TF, V100, 1, 1, 16)
    double = distributed_images_per_sec(RESNET50_TF, V100, 2, 1, 16)
    quad = distributed_images_per_sec(RESNET50_TF, V100, 4, 1, 16)
    assert single < double < quad
    assert double / single < 2.0
    assert quad / single < 4.0


def test_iteration_time_consistent_with_throughput():
    thpt = images_per_sec(RESNET50_TF, V100, 16, batch_size=128)
    assert iteration_time_s(RESNET50_TF, V100, 16, batch_size=128) == \
        pytest.approx(128 / thpt)


def test_streaming_demand_scales_with_throughput():
    k80 = streaming_demand_bps(RESNET50_TF, K80, 16)
    v100 = streaming_demand_bps(RESNET50_TF, V100, 16)
    assert v100 / k80 == pytest.approx(5.0, rel=0.01)


def test_batch_ramp_penalizes_tiny_batches():
    tiny = images_per_sec(RESNET50_TF, V100, 16, batch_size=1)
    normal = images_per_sec(RESNET50_TF, V100, 16, batch_size=128)
    assert tiny < 0.5 * normal


def test_saturation_threads_framework_dependent():
    # Caffe saturates with very few threads; Inception/TF needs many more.
    assert saturation_threads(VGG16_CAFFE) <= 4
    assert saturation_threads(INCEPTIONV3_TF) > 16


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        images_per_sec(RESNET50_TF, "TPU", 16)
    with pytest.raises(ValueError):
        images_per_sec(RESNET50_TF, V100, 0)
    with pytest.raises(ValueError):
        images_per_sec(RESNET50_TF, V100, 16, n_gpus=0)
    with pytest.raises(ValueError):
        iteration_time_s(RESNET50_TF, V100, 16, batch_size=-1)
    with pytest.raises(ValueError):
        model_spec("alexnet", "tensorflow")
    with pytest.raises(ValueError):
        gpu_spec("A100")
