"""Integration tests for Raft leader election and log replication."""


from repro.errors import NotLeaderError
from repro.raft import CallbackStateMachine, LEADER, RaftCluster
from repro.sim import Environment, RngRegistry


class Recorder:
    """Per-node applied-command log, used as the replicated state machine."""

    def __init__(self):
        self.applied = {}  # node_id -> list of (index, command)

    def factory(self, node_id):
        self.applied[node_id] = []

        def apply(index, command):
            self.applied[node_id].append((index, command))
            return ("ok", command)

        def reset():
            self.applied[node_id].clear()

        return CallbackStateMachine(apply, reset)


def make_cluster(size=3, seed=0):
    env = Environment()
    rec = Recorder()
    cluster = RaftCluster(env, RngRegistry(seed), rec.factory, size=size)
    return env, cluster, rec


def test_elects_exactly_one_leader():
    env, cluster, _rec = make_cluster()
    env.run(until=2.0)
    leaders = [n for n in cluster.nodes.values() if n.state == LEADER]
    assert len(leaders) == 1


def test_single_node_cluster_elects_itself():
    env, cluster, _rec = make_cluster(size=1)
    env.run(until=1.0)
    assert cluster.leader() is not None


def test_proposal_applies_on_all_nodes():
    env, cluster, rec = make_cluster()
    env.run(until=1.0)
    proposal = cluster.propose({"op": "put", "key": "a"})
    env.run_until_complete(proposal, limit=env.now + 10)
    env.run(until=env.now + 1.0)
    for node_id, entries in rec.applied.items():
        assert entries == [(1, {"op": "put", "key": "a"})], node_id


def test_proposal_returns_apply_result():
    env, cluster, _rec = make_cluster()
    env.run(until=1.0)
    result = env.run_until_complete(cluster.propose("cmd"),
                                    limit=env.now + 10)
    assert result == ("ok", "cmd")


def test_proposals_apply_in_order():
    env, cluster, rec = make_cluster()
    env.run(until=1.0)
    for i in range(5):
        env.run_until_complete(cluster.propose(i), limit=env.now + 10)
    env.run(until=env.now + 1.0)
    for entries in rec.applied.values():
        assert [cmd for _idx, cmd in entries] == [0, 1, 2, 3, 4]
        assert [idx for idx, _cmd in entries] == [1, 2, 3, 4, 5]


def test_propose_to_follower_fails_fast():
    env, cluster, _rec = make_cluster()
    env.run(until=1.0)
    follower = next(n for n in cluster.nodes.values() if not n.is_leader)
    ev = follower.propose("nope")
    assert ev.triggered and not ev.ok
    assert isinstance(ev.value, NotLeaderError)


def test_new_leader_elected_after_leader_crash():
    env, cluster, _rec = make_cluster()
    env.run(until=1.0)
    old = cluster.crash_leader()
    assert old is not None
    env.run(until=env.now + 2.0)
    new_leader = cluster.leader()
    assert new_leader is not None
    assert new_leader.node_id != old


def test_cluster_survives_leader_crash_and_keeps_committing():
    env, cluster, rec = make_cluster()
    env.run(until=1.0)
    env.run_until_complete(cluster.propose("before"), limit=env.now + 10)
    cluster.crash_leader()
    env.run(until=env.now + 2.0)
    env.run_until_complete(cluster.propose("after"), limit=env.now + 10)
    env.run(until=env.now + 1.0)
    live = [n for n in cluster.nodes.values() if not n._crashed]
    for node in live:
        cmds = [cmd for _i, cmd in rec.applied[node.node_id]]
        assert cmds == ["before", "after"]


def test_restarted_node_catches_up():
    env, cluster, rec = make_cluster()
    env.run(until=1.0)
    victim = next(n for n in cluster.nodes.values() if not n.is_leader)
    victim.crash()
    for i in range(3):
        env.run_until_complete(cluster.propose(f"cmd-{i}"),
                               limit=env.now + 10)
    victim.restart()
    env.run(until=env.now + 2.0)
    cmds = [cmd for _i, cmd in rec.applied[victim.node_id]
            if isinstance(cmd, str) and cmd.startswith("cmd-")]
    assert cmds == ["cmd-0", "cmd-1", "cmd-2"]


def test_minority_partition_cannot_commit():
    env, cluster, _rec = make_cluster(size=3)
    env.run(until=1.0)
    leader = cluster.leader()
    others = [n for n in cluster.nodes if n != leader.node_id]
    # Isolate the leader from both followers.
    cluster.network.partition({leader.node_id}, set(others))
    ev = leader.propose("lost")
    env.run(until=env.now + 2.0)
    # The entry can never commit: either still pending or failed, and the
    # old leader must have been superseded by the majority side.
    assert not (ev.triggered and ev.ok)
    new_leader = cluster.leader()
    assert new_leader is not None
    assert new_leader.node_id != leader.node_id


def test_healed_partition_converges():
    env, cluster, rec = make_cluster(size=3)
    env.run(until=1.0)
    leader = cluster.leader()
    others = [n for n in cluster.nodes if n != leader.node_id]
    cluster.network.partition({leader.node_id}, set(others))
    leader.propose("orphan")  # uncommitted on old leader
    env.run(until=env.now + 2.0)
    env.run_until_complete(cluster.propose("winner"), limit=env.now + 10)
    cluster.network.heal_all()
    env.run(until=env.now + 3.0)
    # All nodes converge to the majority log: 'orphan' is gone everywhere.
    for node_id, entries in rec.applied.items():
        cmds = [c for _i, c in entries]
        assert "winner" in cmds
        assert "orphan" not in cmds


def test_terms_monotonically_increase_across_elections():
    env, cluster, _rec = make_cluster()
    env.run(until=1.0)
    term1 = cluster.leader().current_term
    cluster.crash_leader()
    env.run(until=env.now + 2.0)
    term2 = cluster.leader().current_term
    assert term2 > term1


def test_five_node_cluster_tolerates_two_crashes():
    env, cluster, rec = make_cluster(size=5)
    env.run(until=1.5)
    crashed = 0
    for node in list(cluster.nodes.values()):
        if crashed == 2:
            break
        if not node.is_leader:
            node.crash()
            crashed += 1
    env.run(until=env.now + 1.0)
    env.run_until_complete(cluster.propose("still-works"),
                           limit=env.now + 10)
    live = [n for n in cluster.nodes.values() if not n._crashed]
    assert len(live) == 3
    for node in live:
        env.run(until=env.now + 0.5)
        assert ("still-works" in
                [c for _i, c in rec.applied[node.node_id]])
