"""Raft safety invariants checked against a live crash/recovery trace.

This is the acceptance trace for the staticcheck runtime checker: a
3-node group elects, commits, loses its leader, re-elects, commits more,
recovers the crashed node, and must satisfy Election Safety, Log
Matching, Leader Completeness and State Machine Safety throughout.
"""

from repro.raft import CallbackStateMachine, RaftCluster
from repro.sim import Environment, RngRegistry
from repro.staticcheck import RaftInvariantChecker


def make_checked_cluster(size=3, seed=0):
    env = Environment()
    applied = {}

    def factory(node_id):
        applied[node_id] = []

        def apply(index, command):
            applied[node_id].append((index, command))
            return command

        def reset():
            applied[node_id].clear()

        return CallbackStateMachine(apply, reset)

    cluster = RaftCluster(env, RngRegistry(seed), factory, size=size)
    checker = RaftInvariantChecker()
    cluster.attach_tracer(checker)
    return env, cluster, checker


def test_three_node_crash_recovery_trace_satisfies_invariants():
    env, cluster, checker = make_checked_cluster()
    env.run(until=1.0)
    for i in range(3):
        env.run_until_complete(cluster.propose(f"pre-{i}"),
                               limit=env.now + 10)

    crashed = cluster.crash_leader()
    assert crashed is not None
    env.run(until=env.now + 2.0)
    for i in range(2):
        env.run_until_complete(cluster.propose(f"post-{i}"),
                               limit=env.now + 10)

    cluster.restart(crashed)
    env.run(until=env.now + 3.0)

    checker.check(cluster)
    assert checker.ok, checker.violations
    # The trace really exercised the invariants: two separate elections
    # (pre- and post-crash) and replicated applies on every node.
    assert len(checker.leaders_by_term) >= 2
    assert checker.applies_observed >= 5 * 3  # 5 commands x 3 nodes
    assert sorted(checker.committed) == [1, 2, 3, 4, 5]


def test_partition_heal_trace_satisfies_invariants():
    env, cluster, checker = make_checked_cluster()
    env.run(until=1.0)
    leader = cluster.leader()
    others = {n for n in cluster.nodes if n != leader.node_id}
    cluster.network.partition({leader.node_id}, others)
    leader.propose("orphan")  # can never commit on the minority side
    env.run(until=env.now + 2.0)
    env.run_until_complete(cluster.propose("winner"), limit=env.now + 10)
    cluster.network.heal_all()
    env.run(until=env.now + 3.0)

    checker.check(cluster)
    assert checker.ok, checker.violations
    committed_commands = [cmd for _term, cmd in checker.committed.values()]
    assert "winner" in committed_commands
    assert "orphan" not in committed_commands


def test_checker_attach_via_checker_side_api():
    env, cluster, _ = make_checked_cluster()
    fresh = RaftInvariantChecker().attach(cluster)
    env.run(until=1.0)
    env.run_until_complete(cluster.propose("x"), limit=env.now + 10)
    env.run(until=env.now + 1.0)
    assert fresh.elections_observed >= 1
    assert fresh.ok
