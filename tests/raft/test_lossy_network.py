"""Raft under a lossy network: progress despite message drops."""

import pytest

from repro.raft import CallbackStateMachine, RaftCluster
from repro.sim import Environment, RngRegistry


def make_lossy_cluster(drop, seed=0):
    env = Environment()
    applied = {}

    def factory(node_id):
        applied[node_id] = []
        return CallbackStateMachine(
            lambda i, c, node_id=node_id: applied[node_id].append(c),
            lambda node_id=node_id: applied[node_id].clear())

    cluster = RaftCluster(env, RngRegistry(seed), factory, size=3)
    cluster.network.drop_probability = drop
    return env, cluster, applied


@pytest.mark.parametrize("drop", [0.05, 0.15])
def test_commits_despite_drops(drop):
    env, cluster, applied = make_lossy_cluster(drop)
    env.run(until=3.0)
    for i in range(5):
        env.run_until_complete(cluster.propose(f"cmd-{i}"),
                               limit=env.now + 60)
    env.run(until=env.now + 3.0)
    live_logs = [applied[n.node_id] for n in cluster.nodes.values()
                 if not n._crashed]
    # At least a majority has the full committed sequence.
    complete = [log for log in live_logs
                if log[:5] == [f"cmd-{i}" for i in range(5)]]
    assert len(complete) >= 2


def test_leader_emerges_despite_drops():
    env, cluster, _applied = make_lossy_cluster(0.2, seed=3)
    env.run(until=10.0)
    assert cluster.leader() is not None


def test_heavy_loss_slows_but_does_not_break_safety():
    env, cluster, applied = make_lossy_cluster(0.3, seed=1)
    env.run(until=5.0)
    env.run_until_complete(cluster.propose("only"), limit=env.now + 120)
    env.run(until=env.now + 5.0)
    # Logs agree on the single committed command (prefix property).
    for node in cluster.nodes.values():
        log = applied[node.node_id]
        assert log in ([], ["only"])
