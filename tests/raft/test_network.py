"""Unit tests for the simulated Raft network."""

import pytest

from repro.errors import SimulationError
from repro.raft import Network
from repro.sim import Environment, RngRegistry


def make_net(drop=0.0):
    env = Environment()
    return env, Network(env, RngRegistry(0), drop_probability=drop)


def test_delivers_with_latency():
    env, net = make_net()
    got = []
    net.register("a", lambda src, msg: None)
    net.register("b", lambda src, msg: got.append((src, msg, env.now)))
    net.send("a", "b", "hello")
    env.run()
    assert len(got) == 1
    src, msg, when = got[0]
    assert (src, msg) == ("a", "hello")
    assert when > 0


def test_duplicate_registration_rejected():
    _env, net = make_net()
    net.register("a", lambda s, m: None)
    with pytest.raises(SimulationError):
        net.register("a", lambda s, m: None)


def test_down_node_receives_nothing():
    env, net = make_net()
    got = []
    net.register("a", lambda s, m: None)
    net.register("b", lambda s, m: got.append(m))
    net.take_down("b")
    net.send("a", "b", "x")
    env.run()
    assert got == []
    assert net.messages_dropped == 1


def test_bring_up_restores_delivery():
    env, net = make_net()
    got = []
    net.register("a", lambda s, m: None)
    net.register("b", lambda s, m: got.append(m))
    net.take_down("b")
    net.send("a", "b", "lost")
    net.bring_up("b")
    net.send("a", "b", "found")
    env.run()
    assert got == ["found"]


def test_cut_link_is_bidirectional():
    env, net = make_net()
    got = []
    net.register("a", lambda s, m: got.append(("a", m)))
    net.register("b", lambda s, m: got.append(("b", m)))
    net.cut("a", "b")
    net.send("a", "b", "1")
    net.send("b", "a", "2")
    env.run()
    assert got == []


def test_heal_restores_link():
    env, net = make_net()
    got = []
    net.register("a", lambda s, m: None)
    net.register("b", lambda s, m: got.append(m))
    net.cut("a", "b")
    net.heal("a", "b")
    net.send("a", "b", "x")
    env.run()
    assert got == ["x"]


def test_partition_cuts_cross_links_only():
    env, net = make_net()
    got = []
    for node in "abcd":
        net.register(node, lambda s, m, node=node: got.append((node, m)))
    net.partition({"a", "b"}, {"c", "d"})
    net.send("a", "b", "in-group")
    net.send("a", "c", "cross")
    env.run()
    assert got == [("b", "in-group")]


def test_message_in_flight_dropped_if_partitioned_mid_flight():
    env, net = make_net()
    got = []
    net.register("a", lambda s, m: None)
    net.register("b", lambda s, m: got.append(m))
    net.send("a", "b", "x")
    net.cut("a", "b")  # cut before delivery completes
    env.run()
    assert got == []


def test_drop_probability_drops_some():
    env, net = make_net(drop=0.5)
    got = []
    net.register("a", lambda s, m: None)
    net.register("b", lambda s, m: got.append(m))
    for i in range(200):
        net.send("a", "b", i)
    env.run()
    assert 40 < len(got) < 160


def test_unknown_destination_counts_as_drop():
    env, net = make_net()
    net.register("a", lambda s, m: None)
    net.send("a", "ghost", "x")
    env.run()
    assert net.messages_dropped == 1

# -- asymmetric partition semantics ----------------------------------------


def test_self_partition_is_noop():
    env, net = make_net()
    got = []
    net.register("a", lambda s, m: got.append(m))
    net.cut("a", "a")
    net.send("a", "a", "loopback")
    env.run()
    # A node cannot cut its own link: local delivery never crosses the
    # network.
    assert got == ["loopback"]
    assert net.is_reachable("a", "a")


def test_node_in_both_groups_loses_every_cross_link():
    env, net = make_net()
    inbox = {name: [] for name in "abc"}
    for name in "abc":
        net.register(name, lambda s, m, name=name: inbox[name].append(m))
    # "b" sits in both groups: the flaky-switch-port topology.
    net.partition({"a", "b"}, {"b", "c"})
    assert not net.is_reachable("a", "b")
    assert not net.is_reachable("c", "b")
    assert not net.is_reachable("a", "c")
    # ...but keeps its self-link.
    assert net.is_reachable("b", "b")
    net.send("a", "b", "x")
    net.send("c", "b", "y")
    net.send("b", "b", "self")
    env.run()
    assert inbox["b"] == ["self"]


def test_heal_restores_partitioned_pair():
    env, net = make_net()
    got = []
    net.register("a", lambda s, m: None)
    net.register("b", lambda s, m: got.append(m))
    net.partition({"a"}, {"b"})
    assert not net.is_reachable("a", "b")
    net.heal("a", "b")
    assert net.is_reachable("a", "b")
    net.send("a", "b", "after-heal")
    env.run()
    assert got == ["after-heal"]
