"""Property-based tests for the Raft safety invariants.

Random fault schedules (crashes, restarts, partitions, proposals) are driven
against a cluster, then the classic Raft invariants are checked:

* Election safety: at most one leader per term.
* Log matching: if two logs share (index, term) they are identical up to it.
* State-machine safety: applied sequences are prefixes of one another.
"""

from hypothesis import given, settings, strategies as st

from repro.raft import CallbackStateMachine, RaftCluster
from repro.sim import Environment, RngRegistry


class Tracker:
    def __init__(self):
        self.applied = {}

    def factory(self, node_id):
        self.applied[node_id] = []

        def apply(index, command):
            self.applied[node_id].append((index, command))
            return index

        def reset():
            self.applied[node_id].clear()

        return CallbackStateMachine(apply, reset)


ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["propose", "crash", "restart", "partition",
                         "heal", "wait"]),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1, max_size=12,
)


def run_schedule(actions, size, seed):
    env = Environment()
    tracker = Tracker()
    cluster = RaftCluster(env, RngRegistry(seed), tracker.factory, size=size)
    env.run(until=1.0)
    node_ids = cluster.node_ids()
    leaders_by_term = {}

    def snapshot_leaders():
        for node in cluster.nodes.values():
            if node.is_leader:
                leaders_by_term.setdefault(node.current_term,
                                           set()).add(node.node_id)

    counter = 0
    for action, arg in actions:
        snapshot_leaders()
        if action == "propose":
            leader = cluster.leader()
            if leader is not None:
                leader.propose(f"cmd-{counter}")
                counter += 1
        elif action == "crash":
            node = cluster.nodes[node_ids[arg % size]]
            if not node._crashed:
                node.crash()
        elif action == "restart":
            cluster.restart(node_ids[arg % size])
        elif action == "partition":
            split = 1 + arg % max(1, size - 1)
            cluster.network.partition(set(node_ids[:split]),
                                      set(node_ids[split:]))
        elif action == "heal":
            cluster.network.heal_all()
        env.run(until=env.now + 0.4)
        snapshot_leaders()
    # Heal and let the cluster converge.
    cluster.network.heal_all()
    for node_id in node_ids:
        cluster.restart(node_id)
    env.run(until=env.now + 3.0)
    snapshot_leaders()
    return cluster, tracker, leaders_by_term


@settings(max_examples=25, deadline=None)
@given(actions=ACTIONS, seed=st.integers(min_value=0, max_value=100))
def test_election_safety(actions, seed):
    _cluster, _tracker, leaders_by_term = run_schedule(actions, 3, seed)
    for term, leaders in leaders_by_term.items():
        assert len(leaders) == 1, f"term {term} had leaders {leaders}"


@settings(max_examples=25, deadline=None)
@given(actions=ACTIONS, seed=st.integers(min_value=0, max_value=100))
def test_log_matching(actions, seed):
    cluster, _tracker, _ = run_schedule(actions, 3, seed)
    logs = [node.log for node in cluster.nodes.values()]
    for i in range(len(logs)):
        for j in range(i + 1, len(logs)):
            a, b = logs[i], logs[j]
            for idx in range(min(len(a), len(b)) - 1, -1, -1):
                if a[idx].term == b[idx].term:
                    assert a[:idx + 1] == b[:idx + 1]
                    break


@settings(max_examples=25, deadline=None)
@given(actions=ACTIONS, seed=st.integers(min_value=0, max_value=100))
def test_state_machine_safety(actions, seed):
    _cluster, tracker, _ = run_schedule(actions, 3, seed)
    sequences = sorted(tracker.applied.values(), key=len)
    for i in range(len(sequences) - 1):
        shorter, longer = sequences[i], sequences[i + 1]
        assert longer[:len(shorter)] == shorter


@settings(max_examples=15, deadline=None)
@given(actions=ACTIONS, seed=st.integers(min_value=0, max_value=50))
def test_applied_indexes_are_gapless(actions, seed):
    _cluster, tracker, _ = run_schedule(actions, 3, seed)
    for node_id, entries in tracker.applied.items():
        indexes = [i for i, _c in entries]
        assert indexes == list(range(1, len(indexes) + 1)), node_id
