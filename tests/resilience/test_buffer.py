"""Unit tests for the write-behind BufferedJobWriter."""

import pytest

from repro.errors import (
    DuplicateKeyError,
    SimulationError,
    StoreError,
    StoreUnavailableError,
)
from repro.resilience import BufferedJobWriter, RetryPolicy
from repro.sim import Environment, RngRegistry


class FakeMongoClient:
    """Scripted client: records applied ops, fails while unavailable."""

    def __init__(self, env, latency_s=0.01):
        self.env = env
        self.latency_s = latency_s
        self.available = True
        self.applied = []
        self.reject_duplicates = False
        self.reject_updates = False
        self._seen_ids = set()

    def _op(self, op, collection, payload):
        def run():
            yield self.env.timeout(self.latency_s)
            if not self.available:
                raise StoreUnavailableError("down")
            if op == "update" and self.reject_updates:
                raise StoreError("bad update")
            if op == "insert" and self.reject_duplicates:
                doc_id = payload[0].get("_id")
                if doc_id in self._seen_ids:
                    raise DuplicateKeyError(doc_id)
                self._seen_ids.add(doc_id)
            self.applied.append((self.env.now, op, collection, payload))
        return self.env.process(run(), name=f"fake-mongo-{op}")

    def insert_one(self, collection, document):
        return self._op("insert", collection, (document,))

    def update_one(self, collection, query, update, upsert=False):
        return self._op("update", collection, (query, update, upsert))


def make_writer(seed=0, cooldown_s=0.5):
    env = Environment()
    client = FakeMongoClient(env)
    writer = BufferedJobWriter(
        env, client, stream=RngRegistry(seed).stream("test-writer"),
        policy=RetryPolicy(max_attempts=3, base_delay_s=0.05,
                           max_delay_s=0.2, jitter=False),
        cooldown_s=cooldown_s)
    return env, client, writer


def test_writes_flush_in_fifo_order():
    env, client, writer = make_writer()
    writer.insert("jobs", {"_id": "j1"})
    writer.update("jobs", {"_id": "j1"}, {"$set": {"status": "RUNNING"}})
    writer.insert("jobs", {"_id": "j2"})
    env.run(until=5.0)
    assert [entry[1] for entry in client.applied] == \
        ["insert", "update", "insert"]
    assert writer.total_flushed == 3
    assert writer.pending == 0
    assert not writer.degraded


def test_done_event_fires_when_durable():
    env, client, writer = make_writer()
    durable_at = []

    def submitter():
        write = writer.insert("jobs", {"_id": "j1"})
        yield write
        durable_at.append(env.now)

    env.process(submitter())
    env.run(until=5.0)
    assert durable_at and durable_at[0] > 0


def test_outage_buffers_then_flushes_everything_in_order():
    env, client, writer = make_writer()
    client.available = False
    for index in range(5):
        writer.insert("jobs", {"_id": f"j{index}"})

    def recover():
        yield env.timeout(10.0)
        client.available = True

    env.process(recover())
    env.run(until=30.0)
    assert writer.pending == 0
    assert writer.total_flushed == 5
    assert writer.write_errors == 0
    applied_ids = [payload[0]["_id"] for _t, op, _c, payload
                   in client.applied]
    assert applied_ids == [f"j{index}" for index in range(5)]
    # Nothing landed before recovery.
    assert all(t >= 10.0 for t, *_rest in client.applied)


def test_degraded_mode_entered_and_left():
    env, client, writer = make_writer()
    client.available = False
    writer.insert("jobs", {"_id": "j1"})
    env.run(until=3.0)
    assert writer.degraded
    assert writer.degraded_event().triggered
    client.available = True
    env.run(until=10.0)
    assert not writer.degraded
    assert len(writer.degraded_periods) == 1
    entered, recovered = writer.degraded_periods[0]
    assert entered < recovered
    # The degraded event is re-armed for the next outage.
    assert not writer.degraded_event().triggered


def test_semantic_errors_are_dropped_not_retried_forever():
    env, client, writer = make_writer()
    client.reject_updates = True
    writer.insert("jobs", {"_id": "j1"})
    # A rejected update is a semantic store error (unlike a duplicate
    # insert, which is an idempotent retry): dropped after one attempt
    # so the queue never wedges.
    writer.update("jobs", {"_id": "bad"}, {"$set": {"x": 1}})
    writer.insert("jobs", {"_id": "j2"})
    env.run(until=10.0)
    assert writer.pending == 0  # the queue never wedges
    assert writer.total_flushed == 2
    assert writer.write_errors == 1
    assert not writer.degraded


def test_duplicate_insert_is_suppressed_not_an_error():
    """Re-inserting an already-durable ``_id`` (idempotent re-submission
    after a migration or crash) is success, not a semantic error: the
    enqueuer's done event fires, the queue never wedges, and later
    updates against the record still apply."""
    env, client, writer = make_writer()
    client.reject_duplicates = True
    writer.insert("jobs", {"_id": "j1"})
    env.run(until=2.0)
    durable = []

    def resubmit():
        yield writer.insert("jobs", {"_id": "j1"})
        durable.append(env.now)

    env.process(resubmit())
    writer.update("jobs", {"_id": "j1"}, {"$set": {"status": "MIGRATED"}})
    env.run(until=10.0)
    assert durable, "duplicate insert must still resolve its done event"
    assert writer.duplicates_suppressed == 1
    assert writer.write_errors == 0
    assert writer.pending == 0
    assert not writer.degraded
    # First insert + the update landed; the duplicate did not re-apply.
    ops = [op for _t, op, _c, _p in client.applied]
    assert ops == ["insert", "update"]


def test_close_drains_backlog_across_an_outage():
    """Shutdown contract: close() rejects new writes but flushes every
    buffered record — even through a store outage — before the returned
    drain event fires."""
    env, client, writer = make_writer()
    client.available = False
    for index in range(4):
        writer.insert("jobs", {"_id": f"j{index}"})
    drained_at = []

    def shutdown():
        yield env.timeout(1.0)
        done = writer.close()
        assert writer.closed
        yield done
        drained_at.append(env.now)

    def recover():
        yield env.timeout(12.0)
        client.available = True

    env.process(shutdown())
    env.process(recover())
    env.run(until=60.0)
    assert drained_at and drained_at[0] >= 12.0
    assert writer.pending == 0
    assert writer.total_flushed == 4
    assert [p[0]["_id"] for _t, _op, _c, p in client.applied] == \
        [f"j{index}" for index in range(4)]
    # Writes after close are rejected loudly, not silently dropped.
    with pytest.raises(SimulationError, match="closed"):
        writer.insert("jobs", {"_id": "late"})


def test_pending_ids_names_buffered_records():
    env, client, writer = make_writer()
    client.available = False
    writer.insert("jobs", {"_id": "j1"})
    writer.update("jobs", {"_id": "j2"}, {"$set": {"x": 1}})
    writer.insert("intents", {"_id": "i1"})
    env.run(until=0.5)
    assert writer.pending_ids("jobs") == ["j1", "j2"]
    assert writer.pending_ids("intents") == ["i1"]
    client.available = True
    env.run(until=10.0)
    assert writer.pending_ids("jobs") == []


def test_peak_pending_tracks_backlog():
    env, client, writer = make_writer()
    client.available = False
    for index in range(7):
        writer.insert("jobs", {"_id": f"j{index}"})
    env.run(until=2.0)
    assert writer.peak_pending == 7
    client.available = True
    env.run(until=20.0)
    assert writer.pending == 0
    assert writer.peak_pending == 7
