"""Unit tests for the write-behind BufferedJobWriter."""

from repro.errors import DuplicateKeyError, StoreUnavailableError
from repro.resilience import BufferedJobWriter, RetryPolicy
from repro.sim import Environment, RngRegistry


class FakeMongoClient:
    """Scripted client: records applied ops, fails while unavailable."""

    def __init__(self, env, latency_s=0.01):
        self.env = env
        self.latency_s = latency_s
        self.available = True
        self.applied = []
        self.reject_duplicates = False
        self._seen_ids = set()

    def _op(self, op, collection, payload):
        def run():
            yield self.env.timeout(self.latency_s)
            if not self.available:
                raise StoreUnavailableError("down")
            if op == "insert" and self.reject_duplicates:
                doc_id = payload[0].get("_id")
                if doc_id in self._seen_ids:
                    raise DuplicateKeyError(doc_id)
                self._seen_ids.add(doc_id)
            self.applied.append((self.env.now, op, collection, payload))
        return self.env.process(run(), name=f"fake-mongo-{op}")

    def insert_one(self, collection, document):
        return self._op("insert", collection, (document,))

    def update_one(self, collection, query, update, upsert=False):
        return self._op("update", collection, (query, update, upsert))


def make_writer(seed=0, cooldown_s=0.5):
    env = Environment()
    client = FakeMongoClient(env)
    writer = BufferedJobWriter(
        env, client, stream=RngRegistry(seed).stream("test-writer"),
        policy=RetryPolicy(max_attempts=3, base_delay_s=0.05,
                           max_delay_s=0.2, jitter=False),
        cooldown_s=cooldown_s)
    return env, client, writer


def test_writes_flush_in_fifo_order():
    env, client, writer = make_writer()
    writer.insert("jobs", {"_id": "j1"})
    writer.update("jobs", {"_id": "j1"}, {"$set": {"status": "RUNNING"}})
    writer.insert("jobs", {"_id": "j2"})
    env.run(until=5.0)
    assert [entry[1] for entry in client.applied] == \
        ["insert", "update", "insert"]
    assert writer.total_flushed == 3
    assert writer.pending == 0
    assert not writer.degraded


def test_done_event_fires_when_durable():
    env, client, writer = make_writer()
    durable_at = []

    def submitter():
        write = writer.insert("jobs", {"_id": "j1"})
        yield write
        durable_at.append(env.now)

    env.process(submitter())
    env.run(until=5.0)
    assert durable_at and durable_at[0] > 0


def test_outage_buffers_then_flushes_everything_in_order():
    env, client, writer = make_writer()
    client.available = False
    for index in range(5):
        writer.insert("jobs", {"_id": f"j{index}"})

    def recover():
        yield env.timeout(10.0)
        client.available = True

    env.process(recover())
    env.run(until=30.0)
    assert writer.pending == 0
    assert writer.total_flushed == 5
    assert writer.write_errors == 0
    applied_ids = [payload[0]["_id"] for _t, op, _c, payload
                   in client.applied]
    assert applied_ids == [f"j{index}" for index in range(5)]
    # Nothing landed before recovery.
    assert all(t >= 10.0 for t, *_rest in client.applied)


def test_degraded_mode_entered_and_left():
    env, client, writer = make_writer()
    client.available = False
    writer.insert("jobs", {"_id": "j1"})
    env.run(until=3.0)
    assert writer.degraded
    assert writer.degraded_event().triggered
    client.available = True
    env.run(until=10.0)
    assert not writer.degraded
    assert len(writer.degraded_periods) == 1
    entered, recovered = writer.degraded_periods[0]
    assert entered < recovered
    # The degraded event is re-armed for the next outage.
    assert not writer.degraded_event().triggered


def test_semantic_errors_are_dropped_not_retried_forever():
    env, client, writer = make_writer()
    client.reject_duplicates = True
    writer.insert("jobs", {"_id": "j1"})
    writer.insert("jobs", {"_id": "j1"})  # duplicate: semantic error
    writer.insert("jobs", {"_id": "j2"})
    env.run(until=10.0)
    assert writer.pending == 0  # the queue never wedges
    assert writer.total_flushed == 2
    assert writer.write_errors == 1
    assert not writer.degraded


def test_peak_pending_tracks_backlog():
    env, client, writer = make_writer()
    client.available = False
    for index in range(7):
        writer.insert("jobs", {"_id": f"j{index}"})
    env.run(until=2.0)
    assert writer.peak_pending == 7
    client.available = True
    env.run(until=20.0)
    assert writer.pending == 0
    assert writer.peak_pending == 7
