"""Unit tests for RetryPolicy, Deadline, CircuitBreaker and retry_call."""

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    KeyNotFoundError,
    RetryExhaustedError,
    SimulationError,
    StoreUnavailableError,
)
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    retry_call,
)
from repro.sim import Environment, RngRegistry


def make_env(seed=0):
    env = Environment()
    return env, RngRegistry(seed).stream("test-retry")


def run_retry(env, stream, make_attempt, policy, **kwargs):
    proc = env.process(
        retry_call(env, stream, make_attempt, policy, **kwargs),
        name="retry-under-test")
    return env.run_until_complete(proc)


# -- RetryPolicy -----------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5,
                         jitter=False)
    delays = [policy.backoff_s(a, None) for a in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_jittered_backoff_draws_from_stream_deterministically():
    policy = RetryPolicy(base_delay_s=1.0, jitter=True)
    _env, stream_a = make_env(3)
    _env, stream_b = make_env(3)
    draws_a = [policy.backoff_s(0, stream_a) for _ in range(5)]
    draws_b = [policy.backoff_s(0, stream_b) for _ in range(5)]
    assert draws_a == draws_b
    assert all(0.0 <= d <= 1.0 for d in draws_a)
    assert len(set(draws_a)) > 1


def test_jittered_backoff_without_stream_is_an_error():
    policy = RetryPolicy(jitter=True)
    with pytest.raises(SimulationError):
        policy.backoff_s(0, None)


# -- Deadline --------------------------------------------------------------


def test_deadline_tracks_simulated_time():
    env, _ = make_env()
    deadline = Deadline(env, 10.0)
    assert not deadline.expired
    assert deadline.remaining_s == 10.0
    env.run(until=4.0)
    assert deadline.remaining_s == pytest.approx(6.0)
    env.run(until=11.0)
    assert deadline.expired
    assert deadline.remaining_s == 0.0


def test_deadline_rejects_negative_timeout():
    env, _ = make_env()
    with pytest.raises(ValueError):
        Deadline(env, -1.0)


# -- CircuitBreaker --------------------------------------------------------


def test_breaker_trips_after_threshold_and_recovers_via_probe():
    env, _ = make_env()
    breaker = CircuitBreaker(env, failure_threshold=3, reset_timeout_s=5.0)
    for _ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    env.run(until=5.5)
    # First call after the reset window is the half-open probe...
    assert breaker.allow()
    assert breaker.state == "half-open"
    # ...and only one probe is admitted at a time.
    assert not breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_breaker_reopens_on_failed_probe():
    env, _ = make_env()
    breaker = CircuitBreaker(env, failure_threshold=1, reset_timeout_s=2.0)
    breaker.record_failure()
    assert breaker.state == "open"
    env.run(until=2.5)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    states = [(frm, to) for _t, frm, to in breaker.transitions]
    assert states == [("closed", "open"), ("open", "half-open"),
                      ("half-open", "open")]


# -- retry_call ------------------------------------------------------------


def test_retry_call_succeeds_after_transient_failures():
    env, stream = make_env()
    calls = []

    def attempt():
        calls.append(env.now)
        if len(calls) < 3:
            raise StoreUnavailableError("down")
        return "ok"

    result = run_retry(env, stream, attempt,
                       RetryPolicy(max_attempts=4, jitter=False))
    assert result == "ok"
    assert len(calls) == 3
    assert calls[1] > calls[0]  # backoff slept between attempts


def test_retry_call_exhausts_and_chains_last_error():
    env, stream = make_env()

    def attempt():
        raise StoreUnavailableError("always down")

    with pytest.raises(RetryExhaustedError) as exc_info:
        run_retry(env, stream, attempt, RetryPolicy(max_attempts=3))
    assert isinstance(exc_info.value.__cause__, StoreUnavailableError)


def test_retry_call_does_not_retry_semantic_errors():
    env, stream = make_env()
    calls = []

    def attempt():
        calls.append(env.now)
        raise KeyNotFoundError("missing")

    with pytest.raises(KeyNotFoundError):
        run_retry(env, stream, attempt, RetryPolicy(max_attempts=5))
    assert len(calls) == 1


def test_retry_call_awaits_event_attempts():
    env, stream = make_env()
    attempts = []

    def attempt():
        def op():
            yield env.timeout(0.5)
            attempts.append(env.now)
            if len(attempts) < 2:
                raise StoreUnavailableError("down")
            return "done"
        return env.process(op())

    result = run_retry(env, stream, attempt,
                       RetryPolicy(max_attempts=3, jitter=False))
    assert result == "done"
    assert len(attempts) == 2


def test_retry_call_respects_deadline():
    env, stream = make_env()

    def attempt():
        raise StoreUnavailableError("down")

    deadline = Deadline(env, 0.15)
    with pytest.raises(DeadlineExceededError):
        run_retry(env, stream, attempt,
                  RetryPolicy(max_attempts=100, base_delay_s=0.1,
                              jitter=False),
                  deadline=deadline)
    assert env.now <= 0.5


def test_retry_call_raises_when_breaker_open():
    env, stream = make_env()
    breaker = CircuitBreaker(env, failure_threshold=1,
                             reset_timeout_s=100.0)
    breaker.record_failure()

    def attempt():
        raise AssertionError("must not be called")

    with pytest.raises(CircuitOpenError):
        run_retry(env, stream, attempt, RetryPolicy(), breaker=breaker)


def test_retry_call_feeds_breaker():
    env, stream = make_env()
    breaker = CircuitBreaker(env, failure_threshold=2,
                             reset_timeout_s=100.0)

    def attempt():
        raise StoreUnavailableError("down")

    with pytest.raises(RetryExhaustedError):
        run_retry(env, stream, attempt,
                  RetryPolicy(max_attempts=2, jitter=False),
                  breaker=breaker)
    assert breaker.state == "open"


def test_retry_call_reports_retries_via_callback():
    env, stream = make_env()
    seen = []
    state = {"calls": 0}

    def attempt():
        state["calls"] += 1
        if state["calls"] < 3:
            raise StoreUnavailableError("down")
        return "ok"

    run_retry(env, stream, attempt, RetryPolicy(max_attempts=4),
              on_retry=lambda attempt_no, err: seen.append(attempt_no))
    assert seen == [0, 1]
