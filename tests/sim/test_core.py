"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


def test_timeout_advances_clock():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(5.0)
        fired.append(env.now)

    env.process(proc())
    env.run()
    assert fired == [5.0]
    assert env.now == 5.0


def test_timeouts_fire_in_order():
    env = Environment()
    order = []

    def proc(delay, label):
        yield env.timeout(delay)
        order.append(label)

    env.process(proc(3, "c"))
    env.process(proc(1, "a"))
    env.process(proc(2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    env = Environment()
    order = []

    def proc(label):
        yield env.timeout(1.0)
        order.append(label)

    for label in "abcd":
        env.process(proc(label))
    env.run()
    assert order == list("abcd")


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


# -- tie-break permutation -------------------------------------------------


def _tie_order(tiebreak_seed, labels="abcdefgh"):
    """Fire len(labels) simultaneous timeouts; return completion order."""
    env = Environment(tiebreak_seed=tiebreak_seed)
    order = []

    def proc(label):
        yield env.timeout(1.0)
        order.append(label)

    for label in labels:
        env.process(proc(label))
    env.run()
    return order


def test_negative_tiebreak_seed_rejected():
    with pytest.raises(SimulationError):
        Environment(tiebreak_seed=-1)


def test_perturbed_seed_actually_permutes_ties():
    fifo = _tie_order(0)
    assert fifo == list("abcdefgh")
    permuted = _tie_order(1)
    assert sorted(permuted) == sorted(fifo)
    assert permuted != fifo


def test_perturbed_order_is_deterministic():
    assert _tie_order(7) == _tie_order(7)
    assert _tie_order(7) != _tie_order(8)


def test_perturbed_seed_still_respects_time_ordering():
    env = Environment(tiebreak_seed=5)
    order = []

    def proc(delay, label):
        yield env.timeout(delay)
        order.append(label)

    env.process(proc(3, "c"))
    env.process(proc(1, "a"))
    env.process(proc(2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_observer_timeout_fires_after_normal_events_of_same_tick():
    from repro.sim.core import OBSERVER

    for seed in (0, 1, 2, 3):
        env = Environment(tiebreak_seed=seed)
        order = []

        def observer():
            yield env.timeout(1.0, priority=OBSERVER)
            order.append("observer")

        def worker(label):
            yield env.timeout(1.0)
            order.append(label)

        env.process(observer())
        for label in "abc":
            env.process(worker(label))
        env.run()
        # Whatever the tie-break seed does to a/b/c, the observer
        # samples the settled tick: it always runs last.
        assert order[-1] == "observer"
        assert sorted(order[:-1]) == list("abc")


def test_run_until_stops_clock():
    env = Environment()
    seen = []

    def proc():
        while True:
            yield env.timeout(10)
            seen.append(env.now)

    env.process(proc())
    env.run(until=35)
    assert seen == [10, 20, 30]
    assert env.now == 35


def test_run_until_in_past_rejected():
    env = Environment(initial_time=100)
    with pytest.raises(SimulationError):
        env.run(until=50)


def test_process_waits_on_process():
    env = Environment()
    trace = []

    def child():
        yield env.timeout(4)
        trace.append("child")
        return 42

    def parent():
        value = yield env.process(child())
        trace.append(("parent", value, env.now))

    env.process(parent())
    env.run()
    assert trace == ["child", ("parent", 42, 4.0)]


def test_yield_already_completed_process():
    env = Environment()
    results = []

    def quick():
        yield env.timeout(1)
        return "done"

    def waiter(proc):
        yield env.timeout(10)
        value = yield proc
        results.append((env.now, value))

    proc = env.process(quick())
    env.process(waiter(proc))
    env.run()
    assert results == [(10.0, "done")]


def test_event_succeed_value_delivered():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    env.process(waiter())

    def trigger():
        yield env.timeout(2)
        ev.succeed("payload")

    env.process(trigger())
    env.run()
    assert got == ["payload"]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as err:
            caught.append(str(err))

    env.process(waiter())

    def trigger():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def waiter():
        t1 = env.timeout(5, "slow")
        t2 = env.timeout(2, "fast")
        yield env.any_of([t1, t2])
        results.append(env.now)

    env.process(waiter())
    env.run()
    assert results == [2.0]


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def waiter():
        events = [env.timeout(d) for d in (1, 4, 3)]
        yield env.all_of(events)
        results.append(env.now)

    env.process(waiter())
    env.run()
    assert results == [4.0]


def test_all_of_empty_fires_immediately():
    env = Environment()
    results = []

    def waiter():
        yield env.all_of([])
        results.append(env.now)

    env.process(waiter())
    env.run()
    assert results == [0.0]


def test_interrupt_raises_in_process():
    env = Environment()
    trace = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as intr:  # staticcheck: ignore[SAF001] test asserts interrupt delivery
            trace.append(("interrupted", intr.cause, env.now))

    proc = env.process(victim())

    def killer():
        yield env.timeout(7)
        proc.interrupt("crash")

    env.process(killer())
    env.run()
    assert trace == [("interrupted", "crash", 7.0)]


def test_interrupted_process_can_rewait():
    env = Environment()
    trace = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt:  # staticcheck: ignore[SAF001] test asserts re-wait after interrupt
            trace.append("hit")
        yield env.timeout(5)
        trace.append(env.now)

    proc = env.process(victim())

    def killer():
        yield env.timeout(3)
        proc.interrupt()

    env.process(killer())
    env.run()
    assert trace == ["hit", 8.0]


def test_stale_wakeup_after_interrupt_is_ignored():
    env = Environment()
    trace = []

    def victim():
        try:
            yield env.timeout(10)
            trace.append("should-not-happen")
        except Interrupt:  # staticcheck: ignore[SAF001] test asserts stale wakeup is dropped
            pass
        yield env.timeout(50)
        trace.append(env.now)

    proc = env.process(victim())

    def killer():
        yield env.timeout(1)
        proc.interrupt()

    env.process(killer())
    env.run()
    # The abandoned t=10 timeout must not resume the process early.
    assert trace == [51.0]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def victim():
        yield env.timeout(1)

    proc = env.process(victim())
    env.run()
    proc.interrupt()  # must not raise
    assert proc.triggered


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def failing():
        yield env.timeout(1)
        raise RuntimeError("inner")

    def parent():
        try:
            yield env.process(failing())
        except RuntimeError as err:
            caught.append(str(err))

    env.process(parent())
    env.run()
    assert caught == ["inner"]


def test_run_until_complete_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3)
        return "ok"

    assert env.run_until_complete(env.process(proc())) == "ok"


def test_run_until_complete_raises_on_failure():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise KeyError("nope")

    with pytest.raises(KeyError):
        env.run_until_complete(env.process(proc()))


def test_run_until_complete_detects_deadlock():
    env = Environment()

    def proc():
        yield env.event()  # never fires

    with pytest.raises(SimulationError, match="deadlock"):
        env.run_until_complete(env.process(proc()))


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    proc = env.process(bad())
    env.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)
