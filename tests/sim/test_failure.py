"""Unit tests for the fault injector."""

import pytest

from repro.sim import Environment, FaultInjector, FaultSpec, RngRegistry


def make_injector(seed=0):
    env = Environment()
    return env, FaultInjector(env, RngRegistry(seed))


def test_inject_once_fires_at_delay():
    env, inj = make_injector()
    hits = []
    inj.inject_once("crash", "node-1", delay_s=12.0,
                    on_fault=lambda ev: hits.append((ev.kind, env.now)))
    env.run()
    assert hits == [("crash", 12.0)]


def test_inject_once_recovery_after_duration():
    env, inj = make_injector()
    trace = []
    inj.inject_once("outage", "node-1", delay_s=5.0, duration_s=3.0,
                    on_fault=lambda ev: trace.append(("down", env.now)),
                    on_recover=lambda ev: trace.append(("up", env.now)))
    env.run()
    assert trace == [("down", 5.0), ("up", 8.0)]


def test_recurring_faults_accumulate_in_log():
    env, inj = make_injector()
    spec = FaultSpec(kind="blip", mtbf_s=10.0)
    inj.inject_recurring(spec, "node-1", on_fault=lambda ev: None)
    env.run(until=1000)
    count = len(inj.events_of_kind("blip"))
    # Expect roughly 100 events over 1000s with MTBF 10s.
    assert 60 <= count <= 150


def test_recurring_faults_deterministic_given_seed():
    def run(seed):
        env, inj = make_injector(seed)
        inj.inject_recurring(FaultSpec("blip", mtbf_s=7.0), "n",
                             on_fault=lambda ev: None)
        env.run(until=200)
        return [e.time for e in inj.log]

    assert run(4) == run(4)
    assert run(4) != run(5)


def test_stop_halts_new_faults():
    env, inj = make_injector()
    inj.inject_recurring(FaultSpec("blip", mtbf_s=5.0), "n",
                         on_fault=lambda ev: None)

    def stopper():
        yield env.timeout(100)
        inj.stop()

    env.process(stopper())
    env.run(until=1000)
    assert all(e.time <= 110 for e in inj.log)


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec("bad", mtbf_s=0)
    with pytest.raises(ValueError):
        FaultSpec("bad", mtbf_s=1, duration_s=-1)


def test_record_appends_detail():
    env, inj = make_injector()
    ev = inj.record("manual", "pod-7", extra="info")
    assert ev.detail == {"extra": "info"}
    assert inj.log == [ev]

def test_stop_cancels_pending_one_shot():
    # Regression: stop() used to let a fault whose delay timeout was
    # already pending still fire; it must be cancelled outright.
    env, inj = make_injector()
    hits = []
    inj.inject_once("crash", "n", delay_s=10.0,
                    on_fault=lambda ev: hits.append(ev))

    def stopper():
        yield env.timeout(5.0)
        inj.stop()

    env.process(stopper())
    env.run()
    assert hits == []
    assert inj.log == []


def test_stop_cancels_pending_recurring_fault():
    env, inj = make_injector()
    inj.inject_recurring(FaultSpec("blip", mtbf_s=50.0), "n",
                         on_fault=lambda ev: None)

    def stopper():
        # Stop while the first inter-arrival timeout is still pending.
        yield env.timeout(0.001)
        inj.stop()

    env.process(stopper())
    env.run(until=10_000)
    assert inj.log == []


def test_stop_lets_inflight_outage_recover():
    # A fault that already fired must still run its recovery callback —
    # stop() never leaves an outage half-applied.
    env, inj = make_injector()
    trace = []
    inj.inject_once("outage", "n", delay_s=1.0, duration_s=10.0,
                    on_fault=lambda ev: trace.append(("down", env.now)),
                    on_recover=lambda ev: trace.append(("up", env.now)))

    def stopper():
        yield env.timeout(5.0)
        inj.stop()

    env.process(stopper())
    env.run()
    assert trace == [("down", 1.0), ("up", 11.0)]


def test_fault_spec_jitter_shim_maps_to_deterministic_duration():
    with pytest.warns(DeprecationWarning):
        legacy_off = FaultSpec("k", mtbf_s=1.0, duration_s=2.0, jitter=0.0)
    assert legacy_off.deterministic_duration is True
    with pytest.warns(DeprecationWarning):
        legacy_on = FaultSpec("k", mtbf_s=1.0, duration_s=2.0, jitter=1.0)
    assert legacy_on.deterministic_duration is False


def test_fault_spec_deterministic_duration_must_be_bool():
    with pytest.raises(TypeError):
        FaultSpec("k", mtbf_s=1.0, deterministic_duration=0.5)


def test_deterministic_duration_yields_fixed_outages():
    env, inj = make_injector()
    spec = FaultSpec("outage", mtbf_s=30.0, duration_s=3.0,
                     deterministic_duration=True)
    downs, ups = [], []
    inj.inject_recurring(spec, "n",
                         on_fault=lambda ev: downs.append(env.now),
                         on_recover=lambda ev: ups.append(env.now))
    env.run(until=2000)
    assert len(downs) >= 3
    for down, up in zip(downs, ups):
        assert up - down == pytest.approx(3.0)


def test_min_duration_floor_applies_to_sampled_outages():
    env, inj = make_injector()
    spec = FaultSpec("outage", mtbf_s=20.0, duration_s=0.5,
                     min_duration_s=5.0)
    downs, ups = [], []
    inj.inject_recurring(spec, "n",
                         on_fault=lambda ev: downs.append(env.now),
                         on_recover=lambda ev: ups.append(env.now))
    env.run(until=2000)
    assert len(downs) >= 3
    for down, up in zip(downs, ups):
        assert up - down >= 5.0
