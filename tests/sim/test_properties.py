"""Property-based tests for the simulation kernel."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, FairShareLink


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1000.0),
                       min_size=1, max_size=30))
def test_events_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def proc(delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(proc(delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == pytest.approx(max(delays))


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.01, max_value=100.0),
                       min_size=2, max_size=10))
def test_all_of_fires_at_max_any_of_at_min(delays):
    env = Environment()
    observed = {}

    def waiter():
        events_all = [env.timeout(d) for d in delays]
        yield env.all_of(events_all)
        observed["all"] = env.now

    def any_waiter():
        events_any = [env.timeout(d) for d in delays]
        yield env.any_of(events_any)
        observed["any"] = env.now

    env.process(waiter())
    env.process(any_waiter())
    env.run()
    assert observed["all"] == pytest.approx(max(delays))
    assert observed["any"] == pytest.approx(min(delays))


@settings(max_examples=40, deadline=None)
@given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e6),
                      min_size=1, max_size=12),
       capacity=st.floats(min_value=10.0, max_value=1e5))
def test_fair_share_conserves_bytes_and_bounds_rate(sizes, capacity):
    env = Environment()
    link = FairShareLink(env, capacity_bps=capacity)
    finish = {}

    def sender(index, size):
        yield link.transfer(size)
        finish[index] = env.now

    for i, size in enumerate(sizes):
        env.process(sender(i, size))
    env.run(until=1e9)
    assert len(finish) == len(sizes)
    # Conservation: all bytes moved.
    assert link.bytes_transferred == pytest.approx(sum(sizes), rel=1e-6)
    # Aggregate rate bound: total bytes / makespan <= capacity.
    makespan = max(finish.values())
    assert sum(sizes) / makespan <= capacity * (1 + 1e-6)
    # No transfer beats its solo time.
    for i, size in enumerate(sizes):
        assert finish[i] >= size / capacity * (1 - 1e-9)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_fair_share_equal_transfers_finish_together(data):
    n = data.draw(st.integers(min_value=2, max_value=8))
    size = data.draw(st.floats(min_value=10.0, max_value=1e5))
    env = Environment()
    link = FairShareLink(env, capacity_bps=1000.0)
    finish = []

    def sender():
        yield link.transfer(size)
        finish.append(env.now)

    for _ in range(n):
        env.process(sender())
    env.run(until=1e9)
    assert len(finish) == n
    assert max(finish) - min(finish) < 1e-6
    assert max(finish) == pytest.approx(n * size / 1000.0)
