"""Tests for the runtime schedule-sensitivity detector.

The deliberate-race tests construct the exact situation the detector
exists for: two processes waking from *independent* timeouts at the
same simulated instant and touching the same shared-store key, at
least one writing.  The happens-before tests then show that adding a
real causal edge (waiting on the writer's event) silences the report.
"""

import pytest

from repro.etcd.kv import EtcdStore
from repro.kube.api import KubeAPI
from repro.kube.objects import Node, ObjectMeta
from repro.kube.resources import NodeCapacity
from repro.mongo.database import MongoDatabase
from repro.sim import Environment, RaceDetector, RaceError
from repro.sim.race import VectorClock, note_read, note_write


# -- vector clock unit tests ---------------------------------------------------


def test_vector_clock_ordering():
    a = VectorClock()
    b = VectorClock()
    a.tick(1)
    assert b <= a and not (a <= b)
    b.merge(a)
    assert a <= b and b <= a
    b.tick(2)
    assert a <= b
    a.tick(1)
    assert a.concurrent_with(b)
    assert b.concurrent_with(a)


def test_vector_clock_copy_is_independent():
    a = VectorClock()
    a.tick(7)
    snap = a.copy()
    a.tick(7)
    assert snap <= a and not (a <= snap)


# -- deliberately seeded race --------------------------------------------------


def _racy_pair(env, store):
    """Two processes writing the same key at the same instant, unordered."""

    def writer(value):
        yield env.timeout(1.0)
        store.put("jobs/j1", value)

    env.process(writer("a"), name="writer-a")
    env.process(writer("b"), name="writer-b")


def test_seeded_write_write_race_is_detected():
    env = Environment()
    detector = RaceDetector(env)
    store = EtcdStore(env)
    _racy_pair(env, store)
    env.run()
    assert len(detector.races) == 1
    race = detector.races[0]
    assert race.store == "etcd"
    assert race.key == "jobs/j1"
    assert race.time == 1.0
    # The report names both processes and both code sites.
    assert {race.first.actor, race.second.actor} == {"writer-a", "writer-b"}
    assert race.first.site == "EtcdStore.put"
    assert race.second.site == "EtcdStore.put"
    with pytest.raises(RaceError) as exc:
        detector.assert_race_free()
    assert "writer-a" in str(exc.value)
    assert "EtcdStore.put" in str(exc.value)


def test_seeded_read_write_race_is_detected():
    env = Environment()
    detector = RaceDetector(env)
    store = EtcdStore(env)

    def writer():
        yield env.timeout(1.0)
        store.put("leader", "w")

    def reader():
        yield env.timeout(1.0)
        store.get("leader")

    env.process(writer(), name="writer")
    env.process(reader(), name="reader")
    env.run()
    assert len(detector.races) == 1
    kinds = {detector.races[0].first.kind, detector.races[0].second.kind}
    assert kinds == {"read", "write"}


def test_duplicate_pairs_reported_once():
    env = Environment()
    detector = RaceDetector(env)
    store = EtcdStore(env)

    def writer(value):
        yield env.timeout(1.0)
        store.put("k", value)
        store.put("k", value + "!")

    env.process(writer("a"), name="writer-a")
    env.process(writer("b"), name="writer-b")
    env.run()
    # Four same-site write pairs collapse to one report per (actor, site)
    # pairing.
    assert len(detector.races) == 1


# -- non-races -----------------------------------------------------------------


def test_happens_before_ordered_accesses_are_clean():
    env = Environment()
    detector = RaceDetector(env)
    store = EtcdStore(env)
    done = env.event()

    def writer():
        yield env.timeout(1.0)
        store.put("k", "v")
        done.succeed()

    def reader():
        yield done
        # Same simulated instant as the put, but causally after it.
        assert env.now == 1.0
        store.get("k")

    env.process(writer(), name="writer")
    env.process(reader(), name="reader")
    env.run()
    assert detector.races == []
    detector.assert_race_free()


def test_read_read_is_clean():
    env = Environment()
    detector = RaceDetector(env)
    store = EtcdStore(env)
    store.put("k", "v")

    def reader():
        yield env.timeout(1.0)
        store.get("k")

    env.process(reader(), name="r1")
    env.process(reader(), name="r2")
    env.run()
    assert detector.races == []


def test_distinct_keys_are_clean():
    env = Environment()
    detector = RaceDetector(env)
    store = EtcdStore(env)

    def writer(key):
        yield env.timeout(1.0)
        store.put(key, "v")

    env.process(writer("a"), name="w1")
    env.process(writer("b"), name="w2")
    env.run()
    assert detector.races == []


def test_different_timestamps_are_clean():
    env = Environment()
    detector = RaceDetector(env)
    store = EtcdStore(env)

    def writer(delay):
        yield env.timeout(delay)
        store.put("k", delay)

    env.process(writer(1.0), name="w1")
    env.process(writer(2.0), name="w2")
    env.run()
    assert detector.races == []


def test_same_process_accesses_are_clean():
    env = Environment()
    detector = RaceDetector(env)
    store = EtcdStore(env)

    def writer():
        yield env.timeout(1.0)
        store.put("k", 1)
        store.put("k", 2)
        store.get("k")

    env.process(writer(), name="w")
    env.run()
    assert detector.races == []


# -- lifecycle -----------------------------------------------------------------


def test_detach_stops_recording():
    env = Environment()
    detector = RaceDetector(env)
    store = EtcdStore(env)
    detector.detach()
    assert env.race_detector is None
    _racy_pair(env, store)
    env.run()
    assert detector.races == []


def test_note_helpers_are_noops_without_detector():
    env = Environment()
    note_read(env, "etcd", "k", "site")
    note_write(env, "etcd", "k", "site")
    note_read(None, "etcd", "k", "site")


def test_registered_stores_are_visible():
    env = Environment()
    detector = RaceDetector(env)
    EtcdStore(env)
    KubeAPI(env)
    assert set(detector.stores) == {"etcd", "kube"}


def test_duplicate_store_names_get_unique_labels():
    env = Environment()
    a = EtcdStore(env)
    b = EtcdStore(env)
    assert a._race_label == "etcd"
    assert b._race_label == "etcd#2"


# -- substrate coverage --------------------------------------------------------


def test_kube_write_write_race_is_detected():
    env = Environment()
    detector = RaceDetector(env)
    api = KubeAPI(env)
    api.create_node(Node(meta=ObjectMeta(name="n1"),
                         capacity=NodeCapacity(cpus=1, memory_gb=1)))

    def toucher():
        yield env.timeout(1.0)
        api.update_node(api.get_node("n1"))

    env.process(toucher(), name="t1")
    env.process(toucher(), name="t2")
    env.run()
    assert any(r.store == "kube" and r.key == "nodes/n1"
               for r in detector.races)


def test_mongo_write_write_race_is_detected():
    env = Environment()
    detector = RaceDetector(env)
    db = MongoDatabase("meta", env=env)
    db.collection("jobs").insert_one({"_id": "j1", "status": "QUEUED"})

    def toucher(status):
        yield env.timeout(1.0)
        db.collection("jobs").update_one({"_id": "j1"},
                                         {"$set": {"status": status}})

    env.process(toucher("RUNNING"), name="t1")
    env.process(toucher("FAILED"), name="t2")
    env.run()
    assert any(r.store == "mongo:meta" and r.key == "jobs/j1"
               for r in detector.races)


def test_mongo_without_env_records_nothing():
    env = Environment()
    detector = RaceDetector(env)
    db = MongoDatabase("plain")
    db.collection("jobs").insert_one({"_id": "j1"})
    db.collection("jobs").find({"_id": "j1"})
    assert detector.races == []
    assert "mongo:plain" not in detector.stores
