"""Unit tests for Resource, Store and FairShareLink."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, FairShareLink, Resource, Store


def test_resource_serializes_access():
    env = Environment()
    res = Resource(env, capacity=1)
    trace = []

    def worker(label, hold):
        yield res.request()
        trace.append((label, "in", env.now))
        yield env.timeout(hold)
        res.release()
        trace.append((label, "out", env.now))

    env.process(worker("a", 5))
    env.process(worker("b", 3))
    env.run()
    assert trace == [("a", "in", 0.0), ("a", "out", 5.0),
                     ("b", "in", 5.0), ("b", "out", 8.0)]


def test_resource_capacity_two_runs_concurrently():
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def worker(label):
        yield res.request()
        yield env.timeout(4)
        res.release()
        done.append((label, env.now))

    for label in "abc":
        env.process(worker(label))
    env.run()
    assert done == [("a", 4.0), ("b", 4.0), ("c", 8.0)]


def test_resource_release_without_acquire():
    env = Environment()
    res = Resource(env)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        yield res.request()
        yield env.timeout(10)
        res.release()

    def waiter():
        yield res.request()
        res.release()

    env.process(holder())
    env.process(waiter())
    env.process(waiter())
    env.run(until=5)
    assert res.queue_length == 2
    env.run()
    assert res.queue_length == 0


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer():
        for i in range(3):
            yield env.timeout(1)
            store.put(i)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [0, 1, 2]


def test_store_get_before_put_blocks():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, env.now))

    env.process(consumer())

    def producer():
        yield env.timeout(9)
        store.put("x")

    env.process(producer())
    env.run()
    assert got == [("x", 9.0)]


def test_store_len_counts_buffered_items():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2


def test_fair_share_single_transfer_full_rate():
    env = Environment()
    link = FairShareLink(env, capacity_bps=100.0)
    times = []

    def sender():
        yield link.transfer(1000.0)
        times.append(env.now)

    env.process(sender())
    env.run(until=100)
    assert times == [pytest.approx(10.0)]


def test_fair_share_two_transfers_halve_rate():
    env = Environment()
    link = FairShareLink(env, capacity_bps=100.0)
    times = {}

    def sender(label, size):
        yield link.transfer(size)
        times[label] = env.now

    env.process(sender("a", 1000.0))
    env.process(sender("b", 1000.0))
    env.run(until=100)
    # Two equal transfers sharing 100 bps: both finish at 2x the solo time.
    assert times["a"] == pytest.approx(20.0)
    assert times["b"] == pytest.approx(20.0)


def test_fair_share_late_joiner_slows_first():
    env = Environment()
    link = FairShareLink(env, capacity_bps=100.0)
    times = {}

    def sender(label, size, start):
        yield env.timeout(start)
        yield link.transfer(size)
        times[label] = env.now

    env.process(sender("first", 1000.0, 0.0))
    env.process(sender("second", 1000.0, 5.0))
    env.run(until=200)
    # First moves 500 bytes alone in 5s, then shares: 500 left at 50 bps = 10s.
    assert times["first"] == pytest.approx(15.0)
    # Second: 10s shared (500 bytes) then 500 bytes alone at 100 bps = 5s.
    assert times["second"] == pytest.approx(20.0)


def test_fair_share_zero_size_completes_immediately():
    env = Environment()
    link = FairShareLink(env, capacity_bps=10.0)
    ev = link.transfer(0.0)
    assert ev.triggered


def test_fair_share_rejects_negative_size():
    env = Environment()
    link = FairShareLink(env, capacity_bps=10.0)
    with pytest.raises(SimulationError):
        link.transfer(-5)


def test_fair_share_tracks_bytes_transferred():
    env = Environment()
    link = FairShareLink(env, capacity_bps=100.0)

    def sender():
        yield link.transfer(300.0)

    env.process(sender())
    env.run(until=50)
    assert link.bytes_transferred == pytest.approx(300.0)
