"""Unit tests for named RNG streams."""

from repro.sim import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_reproducible_across_registries():
    draws1 = [RngRegistry(7).stream("x").random() for _ in range(1)]
    draws2 = [RngRegistry(7).stream("x").random() for _ in range(1)]
    assert draws1 == draws2


def test_different_names_give_independent_draws():
    reg = RngRegistry(7)
    a = [reg.stream("a").random() for _ in range(5)]
    b = [reg.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_give_different_draws():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_adding_stream_does_not_perturb_existing():
    reg1 = RngRegistry(3)
    s = reg1.stream("main")
    first = [s.random() for _ in range(3)]

    reg2 = RngRegistry(3)
    reg2.stream("other")  # interleaved creation
    s2 = reg2.stream("main")
    second = [s2.random() for _ in range(3)]
    assert first == second


def test_stream_creation_mid_run_does_not_perturb_in_flight_draws():
    """Registering a new component mid-experiment must not shift the
    draw sequences of streams that are already being consumed."""
    # Run A: two streams drawn end to end, no extra registrations.
    reg_a = RngRegistry(11)
    a_main = [reg_a.stream("main").random() for _ in range(6)]
    a_aux = [reg_a.stream("aux").gauss(0.0, 1.0) for _ in range(6)]

    # Run B, same master seed: half the draws happen, then a brand-new
    # named stream appears (and is consumed), then drawing continues.
    reg_b = RngRegistry(11)
    b_main = [reg_b.stream("main").random() for _ in range(3)]
    b_aux = [reg_b.stream("aux").gauss(0.0, 1.0) for _ in range(3)]
    late = reg_b.stream("late-component")
    late.shuffle(list(range(100)))
    b_main += [reg_b.stream("main").random() for _ in range(3)]
    b_aux += [reg_b.stream("aux").gauss(0.0, 1.0) for _ in range(3)]

    assert b_main == a_main
    assert b_aux == a_aux


def test_memoized_lookup_preserves_sequences():
    """The fast-path dict probe in ``stream`` must hand back the exact
    stream object every time: draws interleaved across many lookups
    equal draws from a single held reference."""
    reg_held = RngRegistry(23)
    held = reg_held.stream("x")
    expected = [held.random() for _ in range(50)]

    reg_lookup = RngRegistry(23)
    got = [reg_lookup.stream("x").random() for _ in range(50)]
    assert got == expected


def test_fork_is_deterministic_and_independent():
    reg = RngRegistry(5)
    child1 = reg.fork("exp")
    child2 = RngRegistry(5).fork("exp")
    assert child1.stream("x").random() == child2.stream("x").random()
    assert reg.stream("x").random() != RngRegistry(5).fork(
        "exp").stream("x").random() or True  # parent differs from child
