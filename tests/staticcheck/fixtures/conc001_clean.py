# staticcheck: fixture
"""CONC001 negatives: re-validated, revalidating, or immutable reads."""


class Registry:
    def __init__(self, env):
        self.env = env
        self.leader = None

    def elect(self, node):
        self.leader = node

    def reread_after_yield(self, message):
        yield self.env.timeout(1.0)
        if self.leader is not None:
            self.leader.send(message)

    def guard_against_fresh_read(self, message):
        leader = self.leader
        yield self.env.timeout(1.0)
        if leader is self.leader:
            leader.send(message)

    def rebound_after_yield(self, message):
        leader = self.leader
        leader.send(message)
        yield self.env.timeout(1.0)
        leader = self.leader
        leader.send(message)

    def value_snapshot_is_fine(self):
        # ``env.now`` is a value, not a reference to shared state: the
        # snapshot is *meant* to be the pre-yield reading.  No ``.now``
        # attribute is ever assigned in this module, so the mutation
        # heuristic keeps this clean.
        started = self.env.now
        yield self.env.timeout(1.0)
        return self.env.now - started
