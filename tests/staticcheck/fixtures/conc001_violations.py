# staticcheck: fixture
"""CONC001 true positives: stale snapshots used across yield points."""


class Registry:
    def __init__(self, env):
        self.env = env
        self.leader = None
        self.epoch = 0

    def elect(self, node):
        self.leader = node
        self.epoch += 1

    def notify(self, message):
        leader = self.leader
        yield self.env.timeout(1.0)
        leader.send(message)  # <- CONC001

    def stamp(self):
        epoch = self.epoch
        yield self.env.timeout(1.0)
        return epoch + 1  # <- CONC001

    def stale_on_one_branch(self, message, urgent):
        leader = self.leader
        if not urgent:
            yield self.env.timeout(5.0)
        leader.send(message)  # <- CONC001
