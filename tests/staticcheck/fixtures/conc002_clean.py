# staticcheck: fixture
"""CONC002 compliant patterns: re-read after the yielding call, snapshot
only across non-yielding callees, or no shared-attribute snapshot at all.
"""


class Replicator:
    def __init__(self, env):
        self.env = env
        self.leader = None
        self.epoch = 0

    def elect(self, node):
        self.leader = node
        self.epoch += 1

    def _replicate(self, entry):
        yield self.env.timeout(1.0)
        return entry

    def _count(self, entry):
        return 1 if entry else 0

    def commit_reread(self, entry, ack):
        self._replicate(entry)
        leader = self.leader  # fresh read after the yielding call
        leader.send(ack)

    def commit_revalidated(self, entry, ack):
        leader = self.leader
        self._replicate(entry)
        if leader is self.leader:  # re-validated against a fresh read
            leader.send(ack)

    def snapshot_across_pure_call(self, entry, ack):
        leader = self.leader
        self._count(entry)  # callee never yields: no preemption
        leader.send(ack)

    def used_before_call(self, entry, ack):
        leader = self.leader
        leader.send(ack)  # snapshot consumed before any yielding call
        self._replicate(entry)
