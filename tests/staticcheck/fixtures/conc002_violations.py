# staticcheck: fixture
"""CONC002 true positives: stale snapshots across transitively-yielding
calls.  The callee, not the caller, contains the yield point — CONC001
cannot see these."""


class Replicator:
    def __init__(self, env):
        self.env = env
        self.leader = None
        self.epoch = 0

    def elect(self, node):
        self.leader = node
        self.epoch += 1

    def _replicate(self, entry):
        yield self.env.timeout(1.0)
        return entry

    def _flush(self):
        self._replicate(None)

    def commit(self, entry, ack):
        leader = self.leader
        self._replicate(entry)
        leader.send(ack)  # <- CONC002

    def commit_deep(self, entry, ack):
        # The yield is two hops down: commit_deep -> _flush -> _replicate.
        leader = self.leader
        self._flush()
        leader.send(ack)  # <- CONC002

    def stamp(self, entry):
        epoch = self.epoch
        self._replicate(entry)
        return epoch + 1  # <- CONC002
