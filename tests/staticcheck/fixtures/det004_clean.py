# staticcheck: fixture
"""DET004 compliant patterns: sim-facing code draws time and randomness
from the simulation (env.now, RngRegistry streams), and a reasoned
DET001 suppression at an audited source stops the taint from cascading
into callers."""

import time


def _sim_stamp(env):
    return env.now


def _sim_jitter(stream):
    return stream.uniform(0.0, 1.0)


def _trace_wall_clock():
    # Audited boundary: the value is written to a host-side trace file
    # only and never reaches the event queue, so it is replay-safe.
    return time.time()  # staticcheck: ignore[DET001] trace-only value, never feeds the sim


class Prober:
    def __init__(self, env, rng):
        self.env = env
        self.rng = rng

    def run_probe(self, target):
        started = _sim_stamp(self.env)
        yield self.env.timeout(1.0)
        return (target, started)

    def run_backoff(self, attempts):
        stream = self.rng.stream("probe:backoff")
        for _attempt in range(attempts):
            delay = _sim_jitter(stream)
            yield self.env.timeout(delay)

    def run_traced(self, target):
        # _trace_wall_clock's source is suppressed with a reason, so it
        # does not taint this sim-facing caller.
        _trace_wall_clock()
        yield self.env.timeout(1.0)
        return target
