# staticcheck: fixture
"""DET004 true positives: a sim-facing (yielding) function reaches a
nondeterministic source through its callees.  The source lines also
carry their direct DET001/DET002 findings — DET004 adds the call-site
view with the chain."""

import random
import time


def _read_clock():
    return time.time()  # <- DET001


def _jitter():
    return random.uniform(0.0, 1.0)  # <- DET002


def _stamp():
    # Two hops: run_probe -> _stamp -> _read_clock.
    return _read_clock()


class Prober:
    def __init__(self, env):
        self.env = env

    def run_probe(self, target):
        started = _stamp()  # <- DET004
        yield self.env.timeout(1.0)
        return (target, started)

    def run_backoff(self, attempts):
        for _attempt in range(attempts):
            delay = _jitter()  # <- DET004
            yield self.env.timeout(delay)
