# staticcheck: fixture
"""PERF001 clean corpus: indexed fanout and non-hot-path scans."""


class Store:
    def __init__(self):
        self._watchers = []
        self._by_key = {}

    def _notify(self, event):
        # Indexed fanout: only the matching subset is touched.
        for watcher in self._by_key.get(event.key, ()):
            watcher.deliver(event)

    def prune(self):
        # Scanning every watcher outside a fanout path is fine:
        # maintenance runs rarely, notification runs per write.
        self._watchers = [w for w in self._watchers if not w.cancelled]

    def watcher_count(self):
        return sum(1 for _ in self._watchers)
