# staticcheck: fixture
"""PERF001 corpus: linear subscriber scans in fanout hot paths."""


class Store:
    def __init__(self):
        self._watchers = []
        self.listeners = {}

    def _notify(self, event):
        for watcher in self._watchers:  # <- PERF001
            if watcher.matches(event.key):
                watcher.deliver(event)

    def emit(self, topic, payload):
        interested = [li for li in self.listeners.values()  # <- PERF001
                      if li.topic == topic]
        for li in interested:
            li(payload)


def broadcast(subscribers, message):
    for sub in list(subscribers):  # <- PERF001
        sub.send(message)
