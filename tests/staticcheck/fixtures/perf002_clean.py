# staticcheck: fixture
"""PERF002 compliant patterns: hot paths reach subscribers through an
index, and cold-path scans (or audited exact-fanout scans) do not
contaminate their callers."""


class Hub:
    def __init__(self):
        self._watchers = []
        self._index = {}

    def _deliver_indexed(self, event):
        # O(matching) via the key index: nothing to flag.
        for watcher in self._index.get(event.key, ()):
            watcher.deliver(event)

    def _sweep_dead(self):
        # Cold maintenance scan; only reachable from cold callers.
        self._watchers = [w for w in self._watchers if not w.closed]

    def _deliver_everyone(self, event):
        # Exact fanout, audited: every watcher must see every event.
        for watcher in self._watchers:  # staticcheck: ignore[PERF001] config-reload events address every watcher by design
            watcher.deliver(event)

    def notify(self, event):
        self._deliver_indexed(event)

    def notify_reload(self, event):
        # The callee's scan carries a reasoned PERF001 suppression, so
        # it is excluded from the summaries and does not resurface here.
        self._deliver_everyone(event)

    def compact(self):
        self._sweep_dead()
