# staticcheck: fixture
"""PERF002 true positives: the subscriber scan lives in a helper, so
PERF001's local view of the hot path sees nothing — the notify path
still pays O(all subscribers) per event."""


class Hub:
    def __init__(self):
        self._watchers = []

    def _deliver_all(self, event):
        # Not hot-named, so PERF001 ignores this scan.
        for watcher in self._watchers:
            if watcher.matches(event.key):
                watcher.deliver(event)

    def _matching(self, key):
        return [w for w in self._watchers if w.matches(key)]

    def notify(self, event):
        self._deliver_all(event)  # <- PERF002

    def emit_matches(self, event):
        for watcher in self._matching(event.key):  # <- PERF002
            watcher.deliver(event)
