# staticcheck: fixture
"""PERF003 clean corpus: indexed scoring and non-hot-path scans."""


class Scheduler:
    def __init__(self, api):
        self.api = api
        self._owner_counts = {}

    def _score(self, pod, node_name):
        # Incremental index maintained from watch events: O(1) read.
        return self._owner_counts.get((pod.owner, node_name), 0)

    def priority(self, pod, node):
        return node.free_gpus - pod.gpus

    def rebuild_index(self):
        # Scanning the store outside a scoring path is fine:
        # reconciliation runs rarely, scoring runs per candidate.
        counts = {}
        for pod in self.api.list_pods():
            key = (pod.owner, pod.node_name)
            counts[key] = counts.get(key, 0) + 1
        self._owner_counts = counts

    def rank_nodes(self, pod, nodes):
        # Iterating the *candidates* is the job; only store scans are
        # the multiplier PERF003 flags.
        return sorted(nodes, key=lambda n: self._score(pod, n.name))
