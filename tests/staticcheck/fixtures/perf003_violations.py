# staticcheck: fixture
"""PERF003 corpus: full-store scans in scoring/priority hot paths."""


class Scheduler:
    def __init__(self, api):
        self.api = api
        self._stores = {"pods": {}}

    def _score(self, pod, node_name):
        peers = self.api.list_pods(owner=pod.owner)  # <- PERF003
        return len([p for p in peers if p.node_name == node_name])

    def priority(self, pod, node):
        total = 0
        for other in self._stores["pods"].values():  # <- PERF003
            if other.node_name == node.name:
                total += 1
        return total

    def rank_nodes(self, pod, nodes):
        bound = self.api.list_pods(node_name=None)  # <- PERF003
        return sorted(nodes, key=lambda n: len(bound))


def score_candidates(store, candidates):
    live = [obj for obj in store.items()  # <- PERF003
            if obj.phase == "Running"]
    return [(c, len(live)) for c in candidates]
