# staticcheck: fixture
"""RES001 negatives: released on every path, or ownership moved on."""


def try_finally_releases(store, flag):
    watcher = store.watch_prefix("jobs/")
    try:
        if flag:
            return 0
        return 1
    finally:
        watcher.cancel()


def released_on_both_branches(store, flag):
    watcher = store.watch("k")
    if flag:
        watcher.cancel()
        return 0
    watcher.cancel()
    return 1


def ownership_handed_off(store, registry):
    watcher = store.watch("k")
    registry.adopt(watcher)


def returned_to_caller(store):
    watcher = store.watch("k")
    return watcher


def attribute_escapes(store, sink):
    lease = store.grant_lease(30.0)
    sink.keepalive(lease.lease_id)
