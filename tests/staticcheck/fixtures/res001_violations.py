# staticcheck: fixture
"""RES001 true positives: acquired resources leaked on some path."""


def early_return_leaks(store, flag):
    watcher = store.watch_prefix("jobs/")  # <- RES001
    if flag:
        return 0
    watcher.cancel()
    return 1


def raise_path_leaks(store, ok):
    lease = store.grant_lease(30.0)  # <- RES001
    if not ok:
        raise RuntimeError("bad input")
    lease.revoke()


def never_released(store):
    watcher = store.watch("status")  # <- RES001
    watcher.get()
    return "done"


def released_outside_finally(store, items):
    watcher = store.watch_prefix("learners/")  # <- RES001
    for item in items:
        if item.bad:
            raise ValueError(item)
    watcher.cancel()
