# staticcheck: fixture
"""RES002 compliant patterns: wrapper-acquired resources released on
every path, ownership genuinely transferred to a releasing or storing
callee, or handed back to the caller."""


def make_watch(store, prefix):
    return store.watch_prefix(prefix)


def finish(watch):
    # Releasing callee: takes ownership and cancels the watch.
    watch.cancel()


class Controller:
    def __init__(self, store):
        self.store = store
        self.watches = []
        self.seen = []

    def _adopt(self, watch):
        # Storing callee: ownership moves into self.watches.
        self.watches.append(watch)

    def released_in_finally(self, prefix):
        w = make_watch(self.store, prefix)
        try:
            self.seen.append(w.pending)
        finally:
            w.cancel()

    def transferred_to_releasing_callee(self, prefix):
        w = make_watch(self.store, prefix)
        finish(w)

    def transferred_to_storing_callee(self, prefix):
        w = self.store.watch_prefix(prefix)
        self._adopt(w)

    def returned_to_caller(self, prefix):
        # The caller now owns the watch (and its call site is an
        # acquisition site via the returns-resource summary).
        return make_watch(self.store, prefix)

    def handed_to_unknown_callee(self, prefix, sink):
        # No summary for sink.consume: assume it takes ownership.
        w = self.store.watch_prefix(prefix)
        sink.consume(w)
