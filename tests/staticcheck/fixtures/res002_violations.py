# staticcheck: fixture
"""RES002 true positives: ownership crosses a call boundary and leaks.

RES001 cannot see either shape: the wrapper acquisition happens in the
callee, and passing a resource to a call looks like an ownership
transfer to RES001's local view."""


def make_watch(store, prefix):
    return store.watch_prefix(prefix)


def make_watch_deep(store, prefix):
    # Ownership flows through two wrappers before reaching the caller.
    return make_watch(store, prefix)


class Controller:
    def __init__(self, store):
        self.store = store
        self.seen = []
        self.hits = 0

    def _drain(self, watch):
        # Use-only: reads the watch, never releases or stores it.
        for event in watch.pending:
            self.seen.append(event)

    def leak_from_wrapper(self, prefix):
        w = make_watch(self.store, prefix)  # <- RES002
        if w.pending:
            self.hits += 1
        return self.hits

    def leak_from_deep_wrapper(self, prefix):
        # Only a field escapes; the caller never gets the handle and
        # can never cancel it.
        w = make_watch_deep(self.store, prefix)  # <- RES002
        return w.pending

    def leak_through_use_only_callee(self, prefix):
        w = self.store.watch_prefix(prefix)  # <- RES002
        self._drain(w)
        return len(self.seen)
