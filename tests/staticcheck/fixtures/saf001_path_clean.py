# staticcheck: fixture
"""SAF001 negatives: every path through the handler re-raises."""

from repro.sim.core import Interrupt


def cleanup_then_reraise(env, resources):
    try:
        yield env.timeout(10.0)
    except Interrupt:
        for resource in resources:
            resource.close()
        raise


def reraise_on_every_branch(env, job):
    try:
        yield env.timeout(10.0)
    except Interrupt:
        if job.finished:
            job.seal()
            raise
        job.abort()
        raise
