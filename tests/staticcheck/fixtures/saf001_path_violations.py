# staticcheck: fixture
"""SAF001 true positives: Interrupt re-raised on only some paths."""

from repro.sim.core import Interrupt


def conditional_swallow(env, job):
    try:
        yield env.timeout(10.0)
    except Interrupt:  # <- SAF001
        if job.finished:
            return
        raise


def raise_only_in_one_branch(env, job, log):
    try:
        yield env.timeout(10.0)
    except Interrupt:  # <- SAF001
        if job.retryable:
            raise
        log.append("giving up")


def swallowed_entirely(env, log):
    try:
        yield env.timeout(10.0)
    except Interrupt:  # <- SAF001
        log.append("crashed")
