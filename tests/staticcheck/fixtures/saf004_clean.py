# staticcheck: fixture
"""SAF004 negatives: every constructed event is observable."""

import pytest


def yielded_inline(env):
    yield env.timeout(1.0)


def stored_on_object(env, obj):
    obj.done = env.event()


def captured_by_closure(env):
    done = env.event()

    def waiter():
        yield done

    return waiter


def passed_along(env, waiters):
    done = env.event()
    waiters.append(done)


def ctor_called_for_its_exception(env):
    with pytest.raises(Exception):
        env.timeout(-1.0)
