# staticcheck: fixture
"""SAF004 true positives: events nothing can ever observe."""


def dropped_event(env):
    env.event()  # <- SAF004


def dropped_timeout(env):
    env.timeout(5.0)  # <- SAF004


def bound_but_never_read(env):
    done = env.event()  # <- SAF004
    return "scheduled"
