# staticcheck: fixture
"""SAF005 compliant patterns: exactly one retry layer per call chain."""


class StoreError(Exception):
    pass


def fetch_once(store, key):
    return store.get(key)


def fetch_with_retry(env, store, key):
    for attempt in range(4):
        try:
            return store.get(key)
        except StoreError:
            yield env.timeout(2.0 ** attempt)
    raise StoreError(key)


def retry_op(env, make_attempt, attempts):
    for attempt in range(attempts):
        try:
            return make_attempt()
        except StoreError:
            yield env.timeout(2.0 ** attempt)
    raise StoreError("retry_op")


def retry_around_plain_op(env, store, key):
    # The only retry layer is this loop; the callee does one attempt.
    for attempt in range(4):
        try:
            return fetch_once(store, key)
        except StoreError:
            yield env.timeout(2.0 ** attempt)


def wrapper_around_plain_op(env, store, key):
    # The only retry layer is inside retry_op; fetch_once is one shot.
    value = yield from retry_op(env, fetch_once, 3)
    return (key, value)


def delegate_to_single_layer(env, store, key):
    # Calling a retrying operation outside any retry loop is the
    # recommended shape: one policy, owned by the callee.
    value = yield from fetch_with_retry(env, store, key)
    return value
