# staticcheck: fixture
"""SAF005 true positives: retry policies stacked across call layers.

Each layer is individually well-behaved (bounded attempts, backoff
sleep), so SAF003 stays quiet — the hazard only exists in the
composition."""


class StoreError(Exception):
    pass


def fetch_with_retry(env, store, key):
    # Inner policy: bounded, backs off — fine on its own.
    for attempt in range(4):
        try:
            return store.get(key)
        except StoreError:
            yield env.timeout(2.0 ** attempt)
    raise StoreError(key)


def retry_op(env, make_attempt, attempts):
    # Generic retrying wrapper around a zero-argument operation.
    for attempt in range(attempts):
        try:
            return make_attempt()
        except StoreError:
            yield env.timeout(2.0 ** attempt)
    raise StoreError("retry_op")


def double_retry(env, store, key):
    # Outer policy around an operation that already retries: 4x4
    # attempts, compounded backoff.
    for attempt in range(4):
        try:
            result = yield from fetch_with_retry(env, store, key)  # <- SAF005
            return result
        except StoreError:
            yield env.timeout(2.0 ** attempt)


class Syncer:
    def __init__(self, env, store):
        self.env = env
        self.store = store

    def _pull(self, key):
        for attempt in range(3):
            try:
                return self.store.get(key)
            except StoreError:
                yield self.env.timeout(1.0 + attempt)

    def sync(self, key):
        # A retrying operation handed to a retrying wrapper.
        value = yield from retry_op(self.env, fetch_with_retry, 3)  # <- SAF005
        return (key, value)
