"""Unit coverage for the project call-graph builder and summary cache.

Exercises the resolution ladder (same-module, imported, re-exported,
``self.`` with base-class walk), the unknown-callee conservatism, and
content-hash cache invalidation semantics.
"""

import json

from repro.staticcheck.interproc import build_project
from repro.staticcheck.interproc.cache import CACHE_VERSION, SummaryCache
from repro.staticcheck.interproc.callgraph import (
    ModuleRecord,
    module_name_of,
)


def project_of(modules):
    """Build a project from ``{display_path: source}``."""
    records = [ModuleRecord(path, source)
               for path, source in modules.items()]
    return build_project(records)


def test_module_name_of_strips_src_and_init():
    assert module_name_of("src/repro/kube/api.py") == "repro.kube.api"
    assert module_name_of("src/repro/etcd/__init__.py") == "repro.etcd"
    assert module_name_of("scratch.py") == "scratch"


def test_direct_and_method_edges():
    project = project_of({
        "src/repro/one.py": """
def helper():
    return 1

def caller():
    return helper()

class Box:
    def get(self):
        return helper()

    def get_twice(self):
        return self.get() + self.get()
"""})
    edges = project.edges()
    assert edges["repro.one.caller"] == ("repro.one.helper",)
    assert edges["repro.one.Box.get"] == ("repro.one.helper",)
    assert edges["repro.one.Box.get_twice"] == ("repro.one.Box.get",)


def test_cross_module_and_reexport_resolution():
    project = project_of({
        "src/repro/pkg/__init__.py": """
from repro.pkg.impl import work
""",
        "src/repro/pkg/impl.py": """
def work():
    return 1
""",
        "src/repro/user.py": """
from repro.pkg import work
import repro.pkg.impl

def via_reexport():
    return work()

def via_module():
    return repro.pkg.impl.work()
"""})
    edges = project.edges()
    assert edges["repro.user.via_reexport"] == ("repro.pkg.impl.work",)
    assert edges["repro.user.via_module"] == ("repro.pkg.impl.work",)


def test_self_call_resolves_through_imported_base_class():
    project = project_of({
        "src/repro/base.py": """
class Base:
    def ping(self):
        return 1
""",
        "src/repro/child.py": """
from repro.base import Base

class Child(Base):
    def run(self):
        return self.ping()
"""})
    edges = project.edges()
    assert edges["repro.child.Child.run"] == ("repro.base.Base.ping",)


def test_unknown_callees_are_counted_not_guessed():
    project = project_of({
        "src/repro/one.py": """
def caller(client):
    client.fetch()
    (lambda: 1)()
    return 0
"""})
    assert project.edges()["repro.one.caller"] == ()
    assert project.locals["repro.one.caller"].unknown_calls >= 1


def test_method_resolution_survives_base_class_cycles():
    project = project_of({
        "src/repro/loop.py": """
class A(B):
    def from_a(self):
        return self.missing()

class B(A):
    def from_b(self):
        return self.from_a()
"""})
    edges = project.edges()
    assert edges["repro.loop.A.from_a"] == ()
    assert edges["repro.loop.B.from_b"] == ("repro.loop.A.from_a",)


def test_cache_cold_warm_and_selective_invalidation(tmp_path):
    cache_path = tmp_path / "cache.json"
    sources = {
        "src/repro/a.py": "def a():\n    return 1\n",
        "src/repro/b.py": "def b():\n    return 2\n",
    }

    def run():
        return build_project(
            [ModuleRecord(path, text)
             for path, text in sorted(sources.items())],
            cache_path)

    cold = run()
    assert cold.cache_stats.recomputed == 2
    assert cold.cache_stats.reused == 0

    warm = run()
    assert warm.cache_stats.recomputed == 0
    assert warm.cache_stats.reused == 2

    sources["src/repro/b.py"] = "def b():\n    return 3\n"
    edited = run()
    assert edited.cache_stats.recomputed == 1
    assert edited.cache_stats.reused == 1


def test_cache_version_bump_invalidates_everything(tmp_path):
    cache_path = tmp_path / "cache.json"
    record = ModuleRecord("src/repro/a.py", "def a():\n    return 1\n")
    build_project([record], cache_path)

    payload = json.loads(cache_path.read_text())
    assert payload["version"] == CACHE_VERSION
    payload["version"] = CACHE_VERSION - 1
    cache_path.write_text(json.dumps(payload))

    project = build_project([record], cache_path)
    assert project.cache_stats.recomputed == 1
    assert project.cache_stats.reused == 0


def test_cache_tolerates_corrupt_file(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    cache = SummaryCache(cache_path)
    assert cache.lookup("src/repro/a.py", "def a(): pass\n") is None


def test_cache_drops_entries_for_deleted_modules(tmp_path):
    cache_path = tmp_path / "cache.json"
    records = [
        ModuleRecord("src/repro/a.py", "def a():\n    return 1\n"),
        ModuleRecord("src/repro/b.py", "def b():\n    return 2\n"),
    ]
    build_project(records, cache_path)
    build_project(records[:1], cache_path)
    payload = json.loads(cache_path.read_text())
    assert sorted(payload["modules"]) == ["src/repro/a.py"]
