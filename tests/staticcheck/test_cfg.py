"""Unit tests for the per-function CFG builder and dataflow solver."""

import ast
import textwrap

import pytest

from repro.staticcheck.cfg import CFG, build_block_cfg, build_cfg
from repro.staticcheck.dataflow import ForwardAnalysis, solve_forward


def func_cfg(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    func = next(node for node in tree.body
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)))
    return build_cfg(func)


def node_at(cfg: CFG, line: int):
    matches = [n for n in cfg.stmt_nodes() if n.line == line]
    assert matches, f"no CFG node at line {line}"
    return matches[0]


def exit_preds(cfg: CFG):
    return {cfg.node(p).line for p in cfg.node(cfg.exit).preds}


def test_straight_line_chain():
    cfg = func_cfg("""
        def f():
            a = 1
            b = 2
            return a + b
    """)
    assert [n.line for n in cfg.stmt_nodes()] == [3, 4, 5]
    assert exit_preds(cfg) == {5}


def test_if_else_joins_at_successor():
    cfg = func_cfg("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            use(a)
    """)
    join = node_at(cfg, 7)
    pred_lines = {cfg.node(p).line for p in join.preds}
    assert pred_lines == {4, 6}


def test_if_without_else_falls_through():
    cfg = func_cfg("""
        def f(x):
            if x:
                a = 1
            use(x)
    """)
    join = node_at(cfg, 5)
    pred_lines = {cfg.node(p).line for p in join.preds}
    # Both the branch body and the test itself reach the successor.
    assert pred_lines == {3, 4}


def test_while_loop_back_edge_and_exit():
    cfg = func_cfg("""
        def f(n):
            while n > 0:
                n -= 1
            return n
    """)
    head = node_at(cfg, 3)
    body = node_at(cfg, 4)
    assert head.index in body.succs          # back edge
    assert node_at(cfg, 5).index in head.succs  # condition-false exit


def test_while_true_has_no_fall_through():
    cfg = func_cfg("""
        def f():
            while True:
                step()
            unreachable()
    """)
    head = node_at(cfg, 3)
    tail = node_at(cfg, 5)
    assert not cfg.path_exists(head.index, tail.index)


def test_break_exits_loop_continue_returns_to_head():
    cfg = func_cfg("""
        def f(items):
            for item in items:
                if item < 0:
                    continue
                if item > 9:
                    break
            return item
    """)
    head = node_at(cfg, 3)
    cont = node_at(cfg, 5)
    brk = node_at(cfg, 7)
    ret = node_at(cfg, 8)
    assert head.index in cont.succs
    assert ret.index in brk.succs
    assert ret.index not in cont.succs


def test_for_else_runs_on_exhaustion_only():
    cfg = func_cfg("""
        def f(items):
            for item in items:
                if item:
                    break
            else:
                fallback()
            done()
    """)
    brk = node_at(cfg, 5)
    els = node_at(cfg, 7)
    done = node_at(cfg, 8)
    # break jumps past the else clause...
    assert done.index in brk.succs
    assert els.index not in brk.succs
    # ...while normal exhaustion goes through it.
    assert els.index in node_at(cfg, 3).succs


def test_try_body_edges_to_handler():
    cfg = func_cfg("""
        def f():
            try:
                risky()
            except ValueError:
                recover()
            after()
    """)
    body = node_at(cfg, 4)
    handler = node_at(cfg, 5)
    after = node_at(cfg, 7)
    assert handler.index in body.succs
    assert after.index in body.succs          # no-exception path
    assert after.index in node_at(cfg, 6).succs  # handled path


def test_return_in_try_passes_through_finally():
    cfg = func_cfg("""
        def f():
            resource = acquire()
            try:
                return resource
            finally:
                resource.close()
    """)
    ret = node_at(cfg, 5)
    # The return must NOT edge straight to exit: every path out goes
    # through a copy of the finally body.
    assert cfg.exit not in ret.succs
    for line in exit_preds(cfg):
        assert line == 7


def test_raise_in_try_passes_through_finally_to_exit():
    cfg = func_cfg("""
        def f():
            try:
                raise RuntimeError()
            finally:
                cleanup()
    """)
    rse = node_at(cfg, 4)
    assert cfg.exit not in rse.succs
    assert exit_preds(cfg) == {6}


def test_finally_duplicated_for_normal_and_exceptional_paths():
    cfg = func_cfg("""
        def f():
            try:
                risky()
            finally:
                cleanup()
            after()
    """)
    copies = [n for n in cfg.stmt_nodes() if n.line == 6]
    assert len(copies) == 2
    after = node_at(cfg, 7)
    # One copy continues to after(); the other escapes to exit.
    succ_sets = [set(c.succs) for c in copies]
    assert {after.index} in succ_sets
    assert {cfg.exit} in succ_sets


def test_raise_outside_try_escapes_to_exit():
    cfg = func_cfg("""
        def f(x):
            if x:
                raise ValueError(x)
            return 0
    """)
    rse = node_at(cfg, 4)
    assert cfg.exit in rse.succs


def test_with_body_follows_header():
    cfg = func_cfg("""
        def f():
            with open_thing() as t:
                use(t)
            after()
    """)
    head = node_at(cfg, 3)
    body = node_at(cfg, 4)
    assert body.index in head.succs
    assert node_at(cfg, 5).index in body.succs


def test_nested_function_body_excluded():
    cfg = func_cfg("""
        def outer():
            x = 1

            def inner():
                yield x
                inner_only()
            return inner
    """)
    lines = {n.line for n in cfg.stmt_nodes()}
    assert 3 in lines and 5 in lines and 8 in lines
    assert 6 not in lines and 7 not in lines
    # inner's yield must not mark the enclosing def as a yield point.
    assert cfg.yield_nodes() == []


def test_yield_detection_in_own_statements():
    cfg = func_cfg("""
        def gen(env):
            before = 1
            yield env.timeout(1)
            after = 2
    """)
    assert [n.line for n in cfg.yield_nodes()] == [4]


def test_path_exists_respects_blocked_nodes():
    cfg = func_cfg("""
        def f(x):
            if x:
                a = 1
            else:
                b = 2
            done()
    """)
    done = node_at(cfg, 7)
    blocked = {node_at(cfg, 4).index}
    assert cfg.path_exists(cfg.entry, done.index)
    assert cfg.path_exists(cfg.entry, done.index, blocked=blocked)
    both = blocked | {node_at(cfg, 6).index}
    assert not cfg.path_exists(cfg.entry, done.index, blocked=both)


def test_build_block_cfg_for_handler_bodies():
    tree = ast.parse(textwrap.dedent("""
        cleanup()
        raise
    """))
    cfg = build_block_cfg(tree.body)
    raise_node = next(n for n in cfg.stmt_nodes()
                      if isinstance(n.stmt, ast.Raise))
    assert cfg.exit in raise_node.succs


def test_build_cfg_rejects_non_function():
    with pytest.raises(TypeError):
        build_cfg(ast.parse("x = 1").body[0])


class _GenKill(ForwardAnalysis):
    """Toy reaching-assignments analysis: facts are assigned names."""

    def transfer(self, node, fact):
        stmt = node.stmt
        if isinstance(stmt, ast.Assign) and \
                isinstance(stmt.targets[0], ast.Name):
            return fact | {stmt.targets[0].id}
        return fact


def test_solve_forward_joins_over_branches():
    cfg = func_cfg("""
        def f(x):
            if x:
                a = 1
            else:
                b = 2
            done()
    """)
    solution = solve_forward(cfg, _GenKill())
    fact_in, _ = solution[node_at(cfg, 7).index]
    assert fact_in == frozenset({"a", "b"})


def test_solve_forward_reaches_fixpoint_through_loop():
    cfg = func_cfg("""
        def f(n):
            while n:
                a = 1
            done()
    """)
    solution = solve_forward(cfg, _GenKill())
    # The loop-body assignment flows around the back edge to the head
    # and out of the loop.
    fact_in, _ = solution[node_at(cfg, 5).index]
    assert "a" in fact_in
