"""Column anchors in the report formats.

Manifest (MAN) findings know the exact YAML token column; the github
and sarif renderers must carry it, and Python findings (column 0) must
stay line-only in both formats.
"""

import json

from repro.staticcheck.cli import render_github, render_sarif
from repro.staticcheck.findings import Finding

YAML_FINDING = Finding("MAN002", "scenarios/demo.yaml", 14,
                       "fault targets undeclared node 'node-K80-9'",
                       column=38)
PY_FINDING = Finding("DET001", "src/repro/sim/clock.py", 7,
                     "wall-clock read in simulation code")


def test_finding_location_renders_column_when_known():
    assert YAML_FINDING.location == "scenarios/demo.yaml:14:38"
    assert PY_FINDING.location == "src/repro/sim/clock.py:7"


def test_github_format_carries_column_for_manifest_findings():
    out = render_github([YAML_FINDING, PY_FINDING], [])
    lines = out.splitlines()
    assert lines[0] == ("::error file=scenarios/demo.yaml,line=14,"
                        "col=38,title=staticcheck MAN002::fault targets "
                        "undeclared node 'node-K80-9'")
    assert lines[1] == ("::error file=src/repro/sim/clock.py,line=7,"
                        "title=staticcheck DET001::wall-clock read in "
                        "simulation code")


def test_sarif_format_carries_start_column_for_manifest_findings():
    report = json.loads(render_sarif([YAML_FINDING, PY_FINDING],
                                     [YAML_FINDING]))
    results = report["runs"][0]["results"]
    regions = [r["locations"][0]["physicalLocation"]["region"]
               for r in results]
    assert regions[0] == {"startLine": 14, "startColumn": 38}
    assert regions[1] == {"startLine": 7}
    suppressed_region = results[2]["locations"][0][
        "physicalLocation"]["region"]
    assert suppressed_region == {"startLine": 14, "startColumn": 38}


def test_repo_scenarios_are_strict_clean():
    """The shipped scenarios/ directory must lint clean — the same
    invariant CI enforces with --strict."""
    from pathlib import Path

    from repro.staticcheck import analyze_paths

    scenario_dir = Path(__file__).resolve().parents[2] / "scenarios"
    findings, _suppressed = analyze_paths([scenario_dir])
    assert findings == []
