"""Fixture-corpus tests for the flow-sensitive rules.

Each ``*_violations.py`` fixture marks every expected finding with a
``# <- CODE`` comment on the offending line; the tests assert that the
analyzer reports exactly those (line, code) pairs — no misses, no false
positives.  ``*_clean.py`` fixtures hold the nearest *correct* idioms
and must produce no findings at all.  Fixture files carry the
``# staticcheck: fixture`` pragma, so directory scans (and therefore
``--strict`` CI runs over ``tests/``) skip them.
"""

from pathlib import Path

import pytest

from repro.staticcheck import analyze_paths, analyze_source

FIXTURES = Path(__file__).parent / "fixtures"

VIOLATION_FIXTURES = {
    "conc001_violations.py": "CONC001",
    "res001_violations.py": "RES001",
    "saf004_violations.py": "SAF004",
    "saf001_path_violations.py": "SAF001",
    "perf001_violations.py": "PERF001",
}

CLEAN_FIXTURES = [
    "conc001_clean.py",
    "res001_clean.py",
    "saf004_clean.py",
    "saf001_path_clean.py",
    "perf001_clean.py",
]


def analyze_fixture(name):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    findings, _suppressed = analyze_source(source, name)
    return source, findings


def marked_lines(source, code):
    return sorted(i for i, line in enumerate(source.splitlines(), 1)
                  if f"<- {code}" in line)


@pytest.mark.parametrize("name,code", sorted(VIOLATION_FIXTURES.items()))
def test_violation_fixture_matches_markers(name, code):
    source, findings = analyze_fixture(name)
    expected = marked_lines(source, code)
    assert expected, f"{name} has no markers"
    assert all(f.code == code for f in findings), findings
    assert sorted(f.line for f in findings) == expected


@pytest.mark.parametrize("name", CLEAN_FIXTURES)
def test_clean_fixture_has_no_findings(name):
    _source, findings = analyze_fixture(name)
    assert findings == []


def test_every_fixture_file_carries_the_pragma():
    for path in sorted(FIXTURES.glob("*.py")):
        head = path.read_text(encoding="utf-8").splitlines()[:3]
        assert any("staticcheck: fixture" in line for line in head), \
            f"{path.name} is missing the fixture pragma"


def test_directory_scan_skips_fixture_files():
    findings, suppressed = analyze_paths([FIXTURES])
    assert findings == []
    assert suppressed == []
