"""Fixture-corpus tests for the flow-sensitive, interprocedural, and
manifest (MAN) rules.

Each ``*_violations.py`` / ``*_violations.yaml`` fixture marks every
expected finding with a ``# <- CODE`` comment on the offending line
(several codes may share a line: ``# <- MAN001 <- MAN004``); the tests
assert that the analyzer reports exactly those (line, code) pairs — no
misses, no false positives.  ``*_clean.*`` fixtures hold the nearest
*correct* idioms and must produce no findings at all.  Fixture files
carry the ``# staticcheck: fixture`` pragma, so directory scans (and
therefore ``--strict`` CI runs over ``tests/``) skip them.
"""

import re
from pathlib import Path

import pytest

from repro.staticcheck import (
    analyze_manifest_source,
    analyze_paths,
    analyze_source,
)

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> the rule it exercises (other codes may legitimately
#: co-fire — e.g. the DET004 fixture's source lines carry DET001 — and
#: every co-firing is marked too).
VIOLATION_FIXTURES = {
    "conc001_violations.py": "CONC001",
    "conc002_violations.py": "CONC002",
    "det004_violations.py": "DET004",
    "res001_violations.py": "RES001",
    "res002_violations.py": "RES002",
    "saf004_violations.py": "SAF004",
    "saf005_violations.py": "SAF005",
    "saf001_path_violations.py": "SAF001",
    "perf001_violations.py": "PERF001",
    "perf002_violations.py": "PERF002",
    "perf003_violations.py": "PERF003",
    "man001_violations.yaml": "MAN001",
    "man002_violations.yaml": "MAN002",
    "man003_violations.yaml": "MAN003",
    "man004_violations.yaml": "MAN004",
    "man005_violations.yaml": "MAN005",
}

CLEAN_FIXTURES = [
    "conc001_clean.py",
    "conc002_clean.py",
    "det004_clean.py",
    "res001_clean.py",
    "res002_clean.py",
    "saf004_clean.py",
    "saf005_clean.py",
    "saf001_path_clean.py",
    "perf001_clean.py",
    "perf002_clean.py",
    "perf003_clean.py",
    "man001_clean.yaml",
    "man002_clean.yaml",
    "man003_clean.yaml",
    "man004_clean.yaml",
    "man005_clean.yaml",
    "golden_manifest.yaml",
]

_MARKER_RE = re.compile(r"<-\s*([A-Z]+\d+)")


def analyze_fixture(name):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    if name.endswith((".yaml", ".yml")):
        findings, _suppressed = analyze_manifest_source(source, name)
    else:
        findings, _suppressed = analyze_source(source, name)
    return source, findings


def marked_pairs(source):
    """All expected ``(line, code)`` pairs from ``# <- CODE`` markers."""
    pairs = []
    for lineno, line in enumerate(source.splitlines(), 1):
        pairs.extend((lineno, code)
                     for code in _MARKER_RE.findall(line))
    return sorted(pairs)


@pytest.mark.parametrize("name,code", sorted(VIOLATION_FIXTURES.items()))
def test_violation_fixture_matches_markers(name, code):
    source, findings = analyze_fixture(name)
    expected = marked_pairs(source)
    assert any(marked == code for _line, marked in expected), \
        f"{name} has no {code} markers"
    got = sorted((f.line, f.code) for f in findings)
    assert got == expected


@pytest.mark.parametrize("name", CLEAN_FIXTURES)
def test_clean_fixture_has_no_findings(name):
    _source, findings = analyze_fixture(name)
    assert findings == []


def test_every_fixture_file_carries_the_pragma():
    paths = sorted(FIXTURES.glob("*.py")) + \
        sorted(FIXTURES.glob("*.yaml")) + sorted(FIXTURES.glob("*.yml"))
    for path in paths:
        head = path.read_text(encoding="utf-8").splitlines()[:3]
        assert any("staticcheck: fixture" in line for line in head), \
            f"{path.name} is missing the fixture pragma"


def test_directory_scan_skips_fixture_files():
    findings, suppressed = analyze_paths([FIXTURES])
    assert findings == []
    assert suppressed == []
