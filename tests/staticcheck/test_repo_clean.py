"""The analyzer must be green over the real tree — and stay green.

Also exercises the CLI contract the CI workflow depends on: ``--strict``
exits 0 on a clean tree and non-zero on an injected violation of every
rule.
"""

import json
import textwrap

import pytest

from repro.staticcheck import ALL_RULES, RULE_CATALOG, analyze_tree
from repro.staticcheck.cli import main
from repro.staticcheck.findings import RULE_EXPLANATIONS

#: One minimal violating module per static rule.
VIOLATIONS = {
    "DET001": """
        import time

        def f():
            return time.time()
    """,
    "DET002": """
        import random

        def f():
            return random.random()
    """,
    "DET003": """
        def f(xs):
            for x in set(xs):
                print(x)
    """,
    "SAF001": """
        def f(ev):
            try:
                yield ev
            except Exception:
                pass
    """,
    "SAF002": """
        def proc(env):
            yield env.timeout(1)
            yield 5
    """,
    "SAF003": """
        def fetch(env, client):
            while True:
                try:
                    return client.get()
                except OSError:
                    yield env.timeout(1.0)
    """,
    "CONC001": """
        class Watcher:
            def elect(self, node):
                self.leader = node

            def run(self, env, message):
                leader = self.leader
                yield env.timeout(1.0)
                leader.send(message)
    """,
    "RES001": """
        def f(store, flag):
            watcher = store.watch("k")
            if flag:
                return 0
            watcher.cancel()
            return 1
    """,
    "SAF004": """
        def f(env):
            env.event()
    """,
    "PERF001": """
        def notify(watchers, event):
            for w in watchers:
                w.deliver(event)
    """,
    "PERF003": """
        def score(api, pod, node):
            return len(api.list_pods(owner=pod.owner))
    """,
    "CONC002": """
        class Registry:
            def elect(self, node):
                self.leader = node

            def replicate(self, env):
                yield env.timeout(1.0)

            def run(self, env, message):
                leader = self.leader
                self.replicate(env)
                leader.send(message)
    """,
    "DET004": """
        import time

        def stamp():
            return time.time()

        def proc(env):
            started = stamp()
            yield env.timeout(1)
            return started
    """,
    "RES002": """
        def consume(watch):
            for event in watch.pending:
                print(event)

        def f(store):
            w = store.watch("k")
            consume(w)
    """,
    "SAF005": """
        def inner(env, client):
            for attempt in range(3):
                try:
                    return client.get()
                except OSError:
                    yield env.timeout(1.0)

        def outer(env, client):
            for attempt in range(3):
                try:
                    return (yield from inner(env, client))
                except OSError:
                    yield env.timeout(1.0)
    """,
    "PERF002": """
        class Hub:
            def __init__(self):
                self._watchers = []

            def deliver(self, event):
                for w in self._watchers:
                    if w.matches(event.key):
                        w.deliver(event)

            def notify(self, event):
                self.deliver(event)
    """,
}


def test_repo_tree_has_zero_unsuppressed_findings():
    findings, _suppressed = analyze_tree()
    assert findings == [], "\n".join(f.render() for f in findings)


def test_interproc_snapshot_fixes_stay_fixed():
    # Regression guard for the CONC002 findings the interprocedural
    # rules surfaced on the real tree: ChaosEngine.run's `scenario`
    # snapshot and cfg._Builder.build_stmt's `cfg` snapshot were
    # replaced with direct attribute reads.  If either snapshot pattern
    # comes back, the cross-call stale-read rule must flag it again.
    findings, _suppressed = analyze_tree()
    stale = [f for f in findings if f.code in ("CONC001", "CONC002")]
    assert stale == [], "\n".join(f.render() for f in stale)


def test_repo_suppressions_all_carry_reasons():
    # Suppressed findings exist (the kernel boundary) but none without a
    # reason, which would have surfaced as SUP001 above.
    _findings, suppressed = analyze_tree()
    assert all(s.code for s in suppressed)


def test_cli_strict_is_green_on_repo(capsys):
    assert main(["--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


@pytest.mark.parametrize("code", sorted(VIOLATIONS))
def test_cli_strict_fails_on_injected_violation(tmp_path, capsys, code):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS[code]))
    assert main(["--strict", str(bad)]) == 1
    assert code in capsys.readouterr().out


def test_cli_without_strict_reports_but_exits_zero(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["DET001"]))
    assert main([str(bad)]) == 0
    assert "DET001" in capsys.readouterr().out


def test_cli_markdown_report(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["DET002"]))
    assert main(["--format", "md", str(bad)]) == 0
    out = capsys.readouterr().out
    assert "## staticcheck findings" in out
    assert "DET002" in out


def test_cli_json_report(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["RES001"]))
    assert main(["--format", "json", str(bad)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in report["findings"]] == ["RES001"]
    finding = report["findings"][0]
    assert finding["line"] == 3
    assert finding["path"].endswith("injected.py")
    assert report["suppressed"] == []


def test_cli_github_annotations(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["SAF004"]))
    assert main(["--strict", "--format", "github", str(bad)]) == 1
    out = capsys.readouterr().out
    line = next(li for li in out.splitlines() if li.startswith("::error"))
    assert line.startswith("::error file=")
    assert "line=3," in line
    assert "title=staticcheck SAF004::" in line


def test_cli_github_green_run_emits_no_annotations(capsys):
    assert main(["--strict", "--format", "github"]) == 0
    out = capsys.readouterr().out
    assert "::error" not in out


def test_cli_sarif_report(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["DET004"]))
    assert main(["--format", "sarif", str(bad)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == "2.1.0"
    run = report["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.staticcheck"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert rule_ids == set(RULE_CATALOG)
    results = run["results"]
    assert {r["ruleId"] for r in results} == {"DET001", "DET004"}
    for result in results:
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("injected.py")
        assert location["region"]["startLine"] >= 1
        assert result["level"] == "error"
        assert result["message"]["text"]


def test_cli_sarif_marks_suppressed_findings_as_notes(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(
        "import time\n"
        "def f():\n"
        "    return time.time()"
        "  # staticcheck: ignore[DET001] trace-only, never feeds sim\n")
    assert main(["--strict", "--format", "sarif", str(bad)]) == 0
    report = json.loads(capsys.readouterr().out)
    results = report["runs"][0]["results"]
    assert len(results) == 1
    assert results[0]["level"] == "note"
    assert results[0]["suppressions"] == [{"kind": "inSource"}]


def test_cli_summary_cache_warm_run_recomputes_nothing(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["DET001"]))
    cache = tmp_path / "cache.json"
    assert main(["--summary-cache", str(cache), str(bad)]) == 0
    cold = capsys.readouterr().err
    assert "0 module(s) reused, 1 recomputed" in cold
    assert cache.exists()
    assert main(["--summary-cache", str(cache), str(bad)]) == 0
    warm = capsys.readouterr().err
    assert "1 module(s) reused, 0 recomputed" in warm


def test_cli_summary_cache_recomputes_only_changed_module(tmp_path,
                                                         capsys):
    first = tmp_path / "first.py"
    second = tmp_path / "second.py"
    first.write_text("def a():\n    return 1\n")
    second.write_text("def b():\n    return 2\n")
    cache = tmp_path / "cache.json"
    assert main(["--summary-cache", str(cache), str(tmp_path)]) == 0
    capsys.readouterr()
    second.write_text("def b():\n    return 3\n")
    assert main(["--summary-cache", str(cache), str(tmp_path)]) == 0
    assert "1 module(s) reused, 1 recomputed" in capsys.readouterr().err


@pytest.mark.parametrize("code", sorted(RULE_EXPLANATIONS))
def test_cli_explain_every_rule(capsys, code):
    assert main(["--explain", code]) == 0
    out = capsys.readouterr().out
    assert out.startswith(f"{code}: ")
    assert "violates:" in out
    assert "compliant:" in out


def test_cli_explain_is_case_insensitive(capsys):
    assert main(["--explain", "saf001"]) == 0
    assert "SAF001" in capsys.readouterr().out


def test_cli_explain_unknown_rule_errors():
    with pytest.raises(SystemExit):
        main(["--explain", "NOPE999"])


def test_every_catalog_rule_has_an_explanation():
    assert set(RULE_EXPLANATIONS) == set(RULE_CATALOG)
    for code, (why, bad, good) in RULE_EXPLANATIONS.items():
        assert why.strip(), f"{code} has no rationale"
        assert bad.strip(), f"{code} has no violating example"
        assert good.strip(), f"{code} has no compliant fix"


def test_cli_list_rules_prints_catalog(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_CATALOG:
        assert code in out


def test_rule_catalog_matches_registered_rules():
    registered = {rule.code for rule in ALL_RULES}
    assert registered | {"SUP001"} == set(RULE_CATALOG)
    for rule in ALL_RULES:
        assert rule.description == RULE_CATALOG[rule.code]
