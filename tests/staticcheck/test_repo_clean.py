"""The analyzer must be green over the real tree — and stay green.

Also exercises the CLI contract the CI workflow depends on: ``--strict``
exits 0 on a clean tree and non-zero on an injected violation of every
rule.
"""

import json
import textwrap

import pytest

from repro.staticcheck import ALL_RULES, RULE_CATALOG, analyze_tree
from repro.staticcheck.cli import main
from repro.staticcheck.findings import RULE_EXPLANATIONS

#: One minimal violating module per static rule.
VIOLATIONS = {
    "DET001": """
        import time

        def f():
            return time.time()
    """,
    "DET002": """
        import random

        def f():
            return random.random()
    """,
    "DET003": """
        def f(xs):
            for x in set(xs):
                print(x)
    """,
    "SAF001": """
        def f(ev):
            try:
                yield ev
            except Exception:
                pass
    """,
    "SAF002": """
        def proc(env):
            yield env.timeout(1)
            yield 5
    """,
    "SAF003": """
        def fetch(env, client):
            while True:
                try:
                    return client.get()
                except OSError:
                    yield env.timeout(1.0)
    """,
    "CONC001": """
        class Watcher:
            def elect(self, node):
                self.leader = node

            def run(self, env, message):
                leader = self.leader
                yield env.timeout(1.0)
                leader.send(message)
    """,
    "RES001": """
        def f(store, flag):
            watcher = store.watch("k")
            if flag:
                return 0
            watcher.cancel()
            return 1
    """,
    "SAF004": """
        def f(env):
            env.event()
    """,
    "PERF001": """
        def notify(watchers, event):
            for w in watchers:
                w.deliver(event)
    """,
}


def test_repo_tree_has_zero_unsuppressed_findings():
    findings, _suppressed = analyze_tree()
    assert findings == [], "\n".join(f.render() for f in findings)


def test_repo_suppressions_all_carry_reasons():
    # Suppressed findings exist (the kernel boundary) but none without a
    # reason, which would have surfaced as SUP001 above.
    _findings, suppressed = analyze_tree()
    assert all(s.code for s in suppressed)


def test_cli_strict_is_green_on_repo(capsys):
    assert main(["--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


@pytest.mark.parametrize("code", sorted(VIOLATIONS))
def test_cli_strict_fails_on_injected_violation(tmp_path, capsys, code):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS[code]))
    assert main(["--strict", str(bad)]) == 1
    assert code in capsys.readouterr().out


def test_cli_without_strict_reports_but_exits_zero(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["DET001"]))
    assert main([str(bad)]) == 0
    assert "DET001" in capsys.readouterr().out


def test_cli_markdown_report(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["DET002"]))
    assert main(["--format", "md", str(bad)]) == 0
    out = capsys.readouterr().out
    assert "## staticcheck findings" in out
    assert "DET002" in out


def test_cli_json_report(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["RES001"]))
    assert main(["--format", "json", str(bad)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in report["findings"]] == ["RES001"]
    finding = report["findings"][0]
    assert finding["line"] == 3
    assert finding["path"].endswith("injected.py")
    assert report["suppressed"] == []


def test_cli_github_annotations(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["SAF004"]))
    assert main(["--strict", "--format", "github", str(bad)]) == 1
    out = capsys.readouterr().out
    line = next(li for li in out.splitlines() if li.startswith("::error"))
    assert line.startswith("::error file=")
    assert "line=3," in line
    assert "title=staticcheck SAF004::" in line


def test_cli_github_green_run_emits_no_annotations(capsys):
    assert main(["--strict", "--format", "github"]) == 0
    out = capsys.readouterr().out
    assert "::error" not in out


@pytest.mark.parametrize("code", sorted(RULE_EXPLANATIONS))
def test_cli_explain_every_rule(capsys, code):
    assert main(["--explain", code]) == 0
    out = capsys.readouterr().out
    assert out.startswith(f"{code}: ")
    assert "violates:" in out
    assert "compliant:" in out


def test_cli_explain_is_case_insensitive(capsys):
    assert main(["--explain", "saf001"]) == 0
    assert "SAF001" in capsys.readouterr().out


def test_cli_explain_unknown_rule_errors():
    with pytest.raises(SystemExit):
        main(["--explain", "NOPE999"])


def test_every_catalog_rule_has_an_explanation():
    assert set(RULE_EXPLANATIONS) == set(RULE_CATALOG)


def test_cli_list_rules_prints_catalog(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_CATALOG:
        assert code in out


def test_rule_catalog_matches_registered_rules():
    registered = {rule.code for rule in ALL_RULES}
    assert registered | {"SUP001"} == set(RULE_CATALOG)
    for rule in ALL_RULES:
        assert rule.description == RULE_CATALOG[rule.code]
