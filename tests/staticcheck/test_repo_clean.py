"""The analyzer must be green over the real tree — and stay green.

Also exercises the CLI contract the CI workflow depends on: ``--strict``
exits 0 on a clean tree and non-zero on an injected violation of every
rule.
"""

import textwrap

import pytest

from repro.staticcheck import ALL_RULES, RULE_CATALOG, analyze_tree
from repro.staticcheck.cli import main

#: One minimal violating module per static rule.
VIOLATIONS = {
    "DET001": """
        import time

        def f():
            return time.time()
    """,
    "DET002": """
        import random

        def f():
            return random.random()
    """,
    "DET003": """
        def f(xs):
            for x in set(xs):
                print(x)
    """,
    "SAF001": """
        def f(ev):
            try:
                yield ev
            except Exception:
                pass
    """,
    "SAF002": """
        def proc(env):
            yield env.timeout(1)
            yield 5
    """,
    "SAF003": """
        def fetch(env, client):
            while True:
                try:
                    return client.get()
                except OSError:
                    yield env.timeout(1.0)
    """,
}


def test_repo_tree_has_zero_unsuppressed_findings():
    findings, _suppressed = analyze_tree()
    assert findings == [], "\n".join(f.render() for f in findings)


def test_repo_suppressions_all_carry_reasons():
    # Suppressed findings exist (the kernel boundary) but none without a
    # reason, which would have surfaced as SUP001 above.
    _findings, suppressed = analyze_tree()
    assert all(s.code for s in suppressed)


def test_cli_strict_is_green_on_repo(capsys):
    assert main(["--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


@pytest.mark.parametrize("code", sorted(VIOLATIONS))
def test_cli_strict_fails_on_injected_violation(tmp_path, capsys, code):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS[code]))
    assert main(["--strict", str(bad)]) == 1
    assert code in capsys.readouterr().out


def test_cli_without_strict_reports_but_exits_zero(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["DET001"]))
    assert main([str(bad)]) == 0
    assert "DET001" in capsys.readouterr().out


def test_cli_markdown_report(tmp_path, capsys):
    bad = tmp_path / "injected.py"
    bad.write_text(textwrap.dedent(VIOLATIONS["DET002"]))
    assert main(["--format", "md", str(bad)]) == 0
    out = capsys.readouterr().out
    assert "## staticcheck findings" in out
    assert "DET002" in out


def test_cli_list_rules_prints_catalog(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_CATALOG:
        assert code in out


def test_rule_catalog_matches_registered_rules():
    registered = {rule.code for rule in ALL_RULES}
    assert registered | {"SUP001"} == set(RULE_CATALOG)
    for rule in ALL_RULES:
        assert rule.description == RULE_CATALOG[rule.code]
