"""Positive/negative AST fixtures for every static rule."""

import textwrap

from repro.staticcheck import analyze_source


def codes(source):
    findings, _suppressed = analyze_source(textwrap.dedent(source))
    return [f.code for f in findings]


# -- DET001: wall-clock reads ---------------------------------------------


def test_det001_flags_time_time():
    assert codes("""
        import time

        def f():
            return time.time()
    """) == ["DET001"]


def test_det001_flags_aliased_import():
    assert codes("""
        import time as clock

        def f():
            return clock.monotonic()
    """) == ["DET001"]


def test_det001_flags_datetime_now():
    assert codes("""
        from datetime import datetime

        def f():
            return datetime.now()
    """) == ["DET001"]


def test_det001_flags_time_sleep():
    assert codes("""
        import time

        def f():
            time.sleep(1.0)
    """) == ["DET001"]


def test_det001_allows_env_now_and_unrelated_attributes():
    assert codes("""
        class T:
            def f(self, env):
                self.timer.time()
                return env.now
    """) == []


# -- DET002: global random ------------------------------------------------


def test_det002_flags_module_level_draw():
    assert codes("""
        import random

        def f():
            return random.random()
    """) == ["DET002"]


def test_det002_flags_from_import_draw():
    assert codes("""
        from random import choice

        def f(xs):
            return choice(xs)
    """) == ["DET002"]


def test_det002_flags_unseeded_random_instance():
    assert codes("""
        import random

        def f():
            return random.Random()
    """) == ["DET002"]


def test_det002_allows_seeded_instance_and_stream_draws():
    assert codes("""
        import random

        def f(rng: random.Random, registry):
            seeded = random.Random(42)
            return seeded.random() + registry.stream("x").random()
    """) == []


# -- DET003: unordered iteration ------------------------------------------


def test_det003_flags_for_over_set_call():
    assert codes("""
        def f(xs):
            for x in set(xs):
                print(x)
    """) == ["DET003"]


def test_det003_flags_comprehension_over_set_literal():
    assert codes("""
        def f():
            return [x for x in {1, 2, 3}]
    """) == ["DET003"]


def test_det003_flags_set_method_results():
    assert codes("""
        def f(a, b):
            for x in a.intersection(b):
                print(x)
    """) == ["DET003"]


def test_det003_allows_sorted_wrapping_and_dict_iteration():
    assert codes("""
        def f(xs, d):
            for x in sorted(set(xs)):
                print(x)
            for v in d.values():
                print(v)
    """) == []


# -- SAF001: Interrupt swallowing ------------------------------------------


def test_saf001_flags_broad_except_without_reraise():
    assert codes("""
        def f(ev):
            try:
                risky(ev)
            except Exception:
                pass
    """) == ["SAF001"]


def test_saf001_flags_bare_except():
    assert codes("""
        def f(ev):
            try:
                risky(ev)
            except:
                return None
    """) == ["SAF001"]


def test_saf001_flags_interrupt_handler_that_swallows():
    assert codes("""
        from repro.sim.core import Interrupt

        def f(ev):
            try:
                risky(ev)
            except Interrupt:
                return None
    """) == ["SAF001"]


def test_saf001_allows_interrupt_reraise_before_broad_handler():
    assert codes("""
        from repro.sim.core import Interrupt

        def f(ev):
            try:
                risky(ev)
            except Interrupt:
                raise
            except Exception:
                return None
    """) == []


def test_saf001_allows_broad_handler_that_reraises():
    assert codes("""
        def f(ev):
            try:
                risky(ev)
            except Exception:
                cleanup()
                raise
    """) == []


def test_saf001_allows_narrow_handlers():
    assert codes("""
        def f(ev):
            try:
                risky(ev)
            except (ValueError, KeyError):
                return None
    """) == []


# -- SAF002: non-Event yields ----------------------------------------------


def test_saf002_flags_literal_yield_in_process():
    assert codes("""
        def proc(env):
            yield env.timeout(1)
            yield 5
    """) == ["SAF002"]


def test_saf002_flags_bare_yield_in_process():
    assert codes("""
        def proc(env):
            yield env.timeout(1)
            yield
    """) == ["SAF002"]


def test_saf002_ignores_plain_data_generators():
    assert codes("""
        def gen():
            yield 1
            yield 2
    """) == []


def test_saf002_ignores_nested_data_generator_inside_process():
    assert codes("""
        def proc(self):
            def data():
                yield 1

            yield self.env.timeout(1)
            yield self.registry.pull("node", "image")
    """) == []


# -- SAF003: unbounded retry loops ----------------------------------------


def test_saf003_flags_while_true_retry_with_backoff_sleep():
    assert codes("""
        def fetch(env, client):
            while True:
                try:
                    return client.get()
                except OSError:
                    yield env.timeout(1.0)
    """) == ["SAF003"]


def test_saf003_flags_self_env_backoff():
    assert codes("""
        class C:
            def drain(self):
                while True:
                    try:
                        self.flush()
                    except ValueError:
                        yield self.env.timeout(self.cooldown_s)
    """) == ["SAF003"]


def test_saf003_allows_bounded_for_range_retry():
    assert codes("""
        def fetch(env, client, policy):
            for attempt in range(policy.max_attempts):
                try:
                    return client.get()
                except OSError:
                    yield env.timeout(policy.backoff_s(attempt))
    """) == []


def test_saf003_allows_while_true_with_deadline_check():
    assert codes("""
        def fetch(env, client, deadline):
            while True:
                if deadline.expired:
                    raise TimeoutError()
                try:
                    return client.get()
                except OSError:
                    yield env.timeout(1.0)
    """) == []


def test_saf003_allows_loop_without_sleeping_handler():
    # Catching-and-counting without a backoff sleep is not a retry loop.
    assert codes("""
        def pump(env, source):
            while True:
                try:
                    source.poll()
                except ValueError:
                    continue
                yield env.timeout(1.0)
    """) == []


def test_saf003_ignores_sleeps_in_nested_functions():
    assert codes("""
        def outer(env):
            while True:
                def helper():
                    try:
                        work()
                    except OSError:
                        yield env.timeout(1.0)
                yield env.timeout(5.0)
    """) == []


# -- PERF001: linear fanout scans ------------------------------------------


def test_perf001_flags_watcher_scan_in_notify():
    assert codes("""
        class S:
            def _notify(self, event):
                for w in self._watchers:
                    w.deliver(event)
    """) == ["PERF001"]


def test_perf001_flags_listener_comprehension_in_emit():
    assert codes("""
        def emit(listeners, payload):
            return [li(payload) for li in listeners]
    """) == ["PERF001"]


def test_perf001_allows_indexed_fanout():
    assert codes("""
        class S:
            def _notify(self, event):
                for w in self._by_key.get(event.key, ()):
                    w.deliver(event)
    """) == []


def test_perf001_allows_subscriber_scan_outside_hot_paths():
    assert codes("""
        class S:
            def prune(self):
                self._watchers = [w for w in self._watchers
                                  if not w.cancelled]
    """) == []


def test_perf001_ignores_nested_function_bodies():
    assert codes("""
        def notify(index, event):
            def audit():
                for w in all_watchers:
                    log(w)
            for w in index[event.key]:
                w.deliver(event)
    """) == []


# -- suppressions ----------------------------------------------------------


def test_suppression_with_reason_silences_finding():
    findings, suppressed = analyze_source(textwrap.dedent("""
        import time

        def f():
            return time.time()  # staticcheck: ignore[DET001] test fixture
    """))
    assert findings == []
    assert [f.code for f in suppressed] == ["DET001"]


def test_suppression_without_reason_is_inert_and_reported():
    # The marker is split so the analyzer's line scanner does not read
    # this literal as a (reasonless) suppression of this test file.
    findings, suppressed = analyze_source(textwrap.dedent("""
        import time

        def f():
            return time.time()  # staticcheck""" + """: ignore[DET001]
    """))
    assert sorted(f.code for f in findings) == ["DET001", "SUP001"]
    assert suppressed == []


def test_suppression_only_covers_listed_codes():
    findings, suppressed = analyze_source(textwrap.dedent("""
        import time

        def f():
            return time.time()  # staticcheck: ignore[DET002] wrong code
    """))
    assert [f.code for f in findings] == ["DET001"]
    assert suppressed == []


def test_suppression_covers_multiple_codes():
    findings, suppressed = analyze_source(textwrap.dedent("""
        import time
        import random

        def f():
            return time.time() + random.random()  # staticcheck: ignore[DET001,DET002] fixture
    """))
    assert findings == []
    assert sorted(f.code for f in suppressed) == ["DET001", "DET002"]


def test_syntax_error_is_reported_not_raised():
    findings, _suppressed = analyze_source("def broken(:\n    pass\n")
    assert [f.code for f in findings] == ["SYNTAX"]
