"""Unit tests for the runtime invariant checkers.

Positive paths run real substrates (a pod lifecycle on the simulated
cluster); negative paths feed fabricated traces through the tracer
interfaces and assert each invariant trips.
"""

import pytest

from repro.errors import InvariantViolation
from repro.kube import FAILED, SUCCEEDED
from repro.raft.messages import LogEntry
from repro.staticcheck import KubeStateMachineChecker, RaftInvariantChecker

from tests.kube.conftest import make_cluster, make_pod


class FakeNode:
    def __init__(self, node_id, term, log):
        self.node_id = node_id
        self.current_term = term
        self.log = log


def entries(*pairs):
    return [LogEntry(term, command) for term, command in pairs]


# -- RaftInvariantChecker: fabricated violations ---------------------------


def test_election_safety_trips_on_two_leaders_per_term():
    checker = RaftInvariantChecker()
    checker.on_leader_elected(FakeNode("n0", 3, []))
    with pytest.raises(InvariantViolation, match="ElectionSafety"):
        checker.on_leader_elected(FakeNode("n1", 3, []))


def test_reelection_of_same_leader_is_fine():
    checker = RaftInvariantChecker()
    node = FakeNode("n0", 3, [])
    checker.on_leader_elected(node)
    checker.on_leader_elected(node)
    assert checker.ok


def test_leader_completeness_trips_on_missing_committed_entry():
    checker = RaftInvariantChecker()
    good = FakeNode("n0", 1, entries((1, "a"), (1, "b")))
    checker.on_apply(good, 1, good.log[0])
    checker.on_apply(good, 2, good.log[1])
    with pytest.raises(InvariantViolation, match="LeaderCompleteness"):
        checker.on_leader_elected(FakeNode("n1", 2, entries((1, "a"))))


def test_leader_completeness_trips_on_wrong_term_at_index():
    checker = RaftInvariantChecker()
    good = FakeNode("n0", 1, entries((1, "a")))
    checker.on_apply(good, 1, good.log[0])
    stale = FakeNode("n1", 3, entries((2, "x")))
    with pytest.raises(InvariantViolation, match="LeaderCompleteness"):
        checker.on_leader_elected(stale)


def test_state_machine_safety_trips_on_conflicting_apply():
    checker = RaftInvariantChecker()
    a = FakeNode("n0", 1, entries((1, "a")))
    b = FakeNode("n1", 1, entries((1, "z")))
    checker.on_apply(a, 1, a.log[0])
    with pytest.raises(InvariantViolation, match="StateMachineSafety"):
        checker.on_apply(b, 1, b.log[0])


def test_log_matching_trips_on_divergent_prefix():
    checker = RaftInvariantChecker()
    a = FakeNode("n0", 2, entries((1, "x"), (2, "same")))
    b = FakeNode("n1", 2, entries((1, "y"), (2, "same")))
    with pytest.raises(InvariantViolation, match="LogMatching"):
        checker.check_log_matching([a, b])


def test_log_matching_accepts_consistent_prefixes():
    checker = RaftInvariantChecker()
    a = FakeNode("n0", 2, entries((1, "x"), (2, "same")))
    b = FakeNode("n1", 2, entries((1, "x"), (2, "same"), (2, "extra")))
    checker.check_log_matching([a, b])
    assert checker.ok


def test_non_strict_mode_collects_instead_of_raising():
    checker = RaftInvariantChecker(strict=False)
    checker.on_leader_elected(FakeNode("n0", 3, []))
    checker.on_leader_elected(FakeNode("n1", 3, []))
    assert not checker.ok
    assert any("ElectionSafety" in v for v in checker.violations)


# -- KubeStateMachineChecker: real lifecycle -------------------------------


def test_pod_lifecycle_satisfies_state_machine():
    env, cluster = make_cluster()
    checker = KubeStateMachineChecker(cluster.api)
    ok_pod = make_pod(env, "ok", duration=10)
    bad_pod = make_pod(env, "bad", duration=5, exit_code=1)
    cluster.api.create_pod(ok_pod)
    cluster.api.create_pod(bad_pod)
    env.run(until=60)
    assert ok_pod.phase == SUCCEEDED
    assert bad_pod.phase == FAILED
    assert checker.ok
    assert checker.transitions_observed > 0


# -- KubeStateMachineChecker: fabricated violations ------------------------


class FakeMeta:
    def __init__(self, uid):
        self.uid = uid


class FakePod:
    def __init__(self, uid, phase, name="fake"):
        self.meta = FakeMeta(uid)
        self.phase = phase
        self.name = name


def test_kube_checker_rejects_terminal_resurrection():
    checker = KubeStateMachineChecker()
    checker._on_pod_change("ADDED", FakePod("u1", "Pending"))
    checker._on_pod_change("MODIFIED", FakePod("u1", "Succeeded"))
    with pytest.raises(InvariantViolation, match="PhaseTransition"):
        checker._on_pod_change("MODIFIED", FakePod("u1", "Running"))


def test_kube_checker_rejects_reuse_after_delete():
    checker = KubeStateMachineChecker()
    checker._on_pod_change("ADDED", FakePod("u1", "Pending"))
    checker._on_pod_change("DELETED", FakePod("u1", "Pending"))
    with pytest.raises(InvariantViolation, match="NoResurrection"):
        checker._on_pod_change("MODIFIED", FakePod("u1", "Running"))


def test_kube_checker_rejects_double_add():
    checker = KubeStateMachineChecker()
    checker._on_pod_change("ADDED", FakePod("u1", "Pending"))
    with pytest.raises(InvariantViolation, match="UniqueUid"):
        checker._on_pod_change("ADDED", FakePod("u1", "Pending"))


def test_kube_checker_rejects_non_pending_creation():
    checker = KubeStateMachineChecker()
    with pytest.raises(InvariantViolation, match="StartsPending"):
        checker._on_pod_change("ADDED", FakePod("u1", "Running"))


def test_kube_checker_rejects_unknown_phase():
    checker = KubeStateMachineChecker()
    with pytest.raises(InvariantViolation, match="KnownPhase"):
        checker._on_pod_change("MODIFIED", FakePod("u1", "Zombie"))


def test_kube_checker_allows_self_loop_status_refresh():
    checker = KubeStateMachineChecker()
    checker._on_pod_change("ADDED", FakePod("u1", "Pending"))
    checker._on_pod_change("MODIFIED", FakePod("u1", "Running"))
    checker._on_pod_change("MODIFIED", FakePod("u1", "Running"))
    checker._on_pod_change("MODIFIED", FakePod("u1", "Failed"))
    assert checker.ok
