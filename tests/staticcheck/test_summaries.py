"""Unit coverage for the bottom-up effect-summary fixpoint.

Covers transitive propagation of every facet (yields, nondet, retries,
scan, returns-resource), witness chains, suppression gating at the
source, unknown-callee under-approximation, and termination on cycles
and mutual recursion.
"""

from repro.staticcheck.interproc import build_project
from repro.staticcheck.interproc.callgraph import ModuleRecord
from repro.staticcheck.interproc.summaries import MAX_CHAIN


def summaries_of(modules):
    project = build_project(
        [ModuleRecord(path, source)
         for path, source in modules.items()])
    return project.summaries


def test_yields_propagate_transitively_with_chain():
    summaries = summaries_of({"src/repro/m.py": """
def sleeps(env):
    yield env.timeout(1)

def middle(env):
    sleeps(env)

def top(env):
    middle(env)
"""})
    assert summaries["repro.m.sleeps"].yields
    assert summaries["repro.m.sleeps"].yields_chain == ()
    assert summaries["repro.m.middle"].yields
    assert summaries["repro.m.middle"].yields_chain == \
        ("repro.m.sleeps",)
    assert summaries["repro.m.top"].yields
    assert summaries["repro.m.top"].yields_chain == \
        ("repro.m.middle", "repro.m.sleeps")


def test_nondet_taints_callers_and_names_the_source():
    summaries = summaries_of({"src/repro/m.py": """
import time

def source():
    return time.time()

def caller():
    return source()
"""})
    assert summaries["repro.m.source"].nondet == "time.time"
    assert summaries["repro.m.caller"].nondet == "time.time"
    assert summaries["repro.m.caller"].nondet_chain == \
        ("repro.m.source",)


def test_reasoned_suppression_stops_nondet_taint_at_the_source():
    summaries = summaries_of({"src/repro/m.py": """
import time

def source():
    return time.time()  # staticcheck: ignore[DET001] trace-only value

def caller():
    return source()
"""})
    assert summaries["repro.m.source"].nondet == ""
    assert summaries["repro.m.caller"].nondet == ""


def test_unreasoned_suppression_does_not_stop_taint():
    # The bare pragma is assembled at runtime so it only exists inside
    # the analyzed string, never on a line of this file — the analyzer
    # scans tests/ too and would flag a literal one as SUP001.
    pragma = "# staticcheck: " + "ignore[DET001]"
    summaries = summaries_of({"src/repro/m.py": """
import time

def source():
    return time.time()  %s
""" % pragma})
    assert summaries["repro.m.source"].nondet == "time.time"


def test_retries_propagate_through_wrappers():
    summaries = summaries_of({"src/repro/m.py": """
def retry_call(env, op):
    for attempt in range(3):
        try:
            return op()
        except OSError:
            yield env.timeout(1.0)

def wrapper(env, op):
    return (yield from retry_call(env, op))
"""})
    assert summaries["repro.m.retry_call"].retries
    assert summaries["repro.m.wrapper"].retries
    assert summaries["repro.m.wrapper"].retries_chain == \
        ("repro.m.retry_call",)


def test_scan_propagates_but_suppressed_scan_does_not():
    summaries = summaries_of({"src/repro/m.py": """
def scan_all(watchers, event):
    for w in watchers:
        w.deliver(event)

def audited(watchers, event):
    for w in watchers:  # staticcheck: ignore[PERF001] exact fanout
        w.deliver(event)

def calls_scan(watchers, event):
    scan_all(watchers, event)

def calls_audited(watchers, event):
    audited(watchers, event)
"""})
    assert summaries["repro.m.scan_all"].scan == "watchers"
    assert summaries["repro.m.calls_scan"].scan == "watchers"
    assert summaries["repro.m.calls_scan"].scan_chain == \
        ("repro.m.scan_all",)
    assert summaries["repro.m.audited"].scan == ""
    assert summaries["repro.m.calls_audited"].scan == ""


def test_returns_resource_flows_through_wrapper_chain():
    summaries = summaries_of({"src/repro/m.py": """
def make_watch(store, prefix):
    return store.watch_prefix(prefix)

def make_watch_outer(store, prefix):
    return make_watch(store, prefix)

def assigned_then_returned(store, prefix):
    w = store.watch(prefix)
    return w
"""})
    assert summaries["repro.m.make_watch"].returns_resource
    assert summaries["repro.m.make_watch_outer"].returns_resource
    assert summaries["repro.m.assigned_then_returned"].returns_resource


def test_param_release_and_escape_classification():
    project = build_project([ModuleRecord("src/repro/m.py", """
def releases(watch):
    watch.cancel()

def uses(watch):
    return watch.pending

def stores(registry, watch):
    registry.adopt(watch)
""")])
    fns = project.locals
    assert fns["repro.m.releases"].param_release == ("watch",)
    assert fns["repro.m.uses"].param_release == ()
    assert fns["repro.m.uses"].param_escape == ()
    assert "watch" in fns["repro.m.stores"].param_escape


def test_unknown_callees_contribute_no_effects():
    summaries = summaries_of({"src/repro/m.py": """
def caller(client):
    client.do_something()
    return 0
"""})
    summary = summaries["repro.m.caller"]
    assert not summary.yields
    assert not summary.nondet
    assert not summary.retries
    assert summary.unknown_calls == 1


def test_mutual_recursion_reaches_fixpoint():
    summaries = summaries_of({"src/repro/m.py": """
def ping(env, n):
    if n > 0:
        pong(env, n - 1)

def pong(env, n):
    yield env.timeout(1)
    ping(env, n)
"""})
    assert summaries["repro.m.ping"].yields
    assert summaries["repro.m.pong"].yields
    assert summaries["repro.m.ping"].yields_chain[0] == "repro.m.pong"


def test_self_recursion_terminates_and_keeps_own_effects():
    summaries = summaries_of({"src/repro/m.py": """
def countdown(env, n):
    yield env.timeout(1)
    if n > 0:
        countdown(env, n - 1)
"""})
    assert summaries["repro.m.countdown"].yields


def test_witness_chains_are_bounded():
    chain = "\n".join(
        f"def f{i}(env):\n    f{i + 1}(env)" for i in range(30))
    source = chain + "\n" + (
        "def f30(env):\n    yield env.timeout(1)\n")
    summaries = summaries_of({"src/repro/m.py": source})
    assert summaries["repro.m.f0"].yields
    assert len(summaries["repro.m.f0"].yields_chain) <= MAX_CHAIN


def test_cross_module_propagation():
    summaries = summaries_of({
        "src/repro/low.py": """
import time

def now():
    return time.time()
""",
        "src/repro/high.py": """
from repro.low import now

def caller():
    return now()
""",
    })
    assert summaries["repro.high.caller"].nondet == "time.time"
    assert summaries["repro.high.caller"].nondet_chain == \
        ("repro.low.now",)
