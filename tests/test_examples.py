"""Smoke tests: every shipped example must run to completion."""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "COMPLETED" in out
    assert "PROCESSING" in out


def test_fault_tolerance_demo(capsys):
    run_example("fault_tolerance_demo.py")
    out = capsys.readouterr().out
    assert "COMPLETED despite all three faults" in out


def test_hyperparameter_sweep(capsys):
    run_example("hyperparameter_sweep.py")
    out = capsys.readouterr().out
    assert "HALTED" in out
    assert "rejected by admission control" in out
    assert out.count("COMPLETED") >= 3


def test_scheduler_comparison(capsys):
    run_example("scheduler_comparison.py")
    out = capsys.readouterr().out
    assert "NO - fragmented" in out
    assert "gang (BSA)" in out


def test_production_trace_study(capsys):
    run_example("production_trace_study.py", ["5"])
    out = capsys.readouterr().out
    assert "fewer with Pack" in out


def test_multi_tenant_operations(capsys):
    run_example("multi_tenant_operations.py")
    out = capsys.readouterr().out
    assert "drained" in out
    assert "priority dispatch order" in out
    assert "COMPLETED" in out
