"""Tests for the failure-study workload (short horizon)."""

import pytest

from repro.workloads import FailureStudyConfig, run_failure_study

# One short, shared run (module-scoped for speed).
_CONFIG = FailureStudyConfig(days=1, jobs_per_day=400, seed=3,
                             node_crash_mtbf_days=4.0)


@pytest.fixture(scope="module")
def study():
    return run_failure_study(_CONFIG)


def test_jobs_flow_through(study):
    assert study.jobs_submitted > 200
    assert study.jobs_completed > 0
    assert study.jobs_cancelled > 0


def test_node_crashes_recorded(study):
    assert study.node_crashes >= 1


def test_node_crashes_come_from_fault_injector_audit(study):
    # The study drives crashes through FaultInjector, so every crash has
    # a matching audit record.
    assert len(study.fault_events) == study.node_crashes
    assert all(event.kind == "node-crash" for event in study.fault_events)
    assert all(event.target.startswith("node-")
               for event in study.fault_events)
    times = [event.time for event in study.fault_events]
    assert times == sorted(times)


def test_learners_dominate_scheduling_failures(study):
    fractions = study.failed_type_fractions()
    assert fractions.get("learner", 0) > 0.5


def test_no_nodes_is_leading_reason(study):
    fractions = study.reason_fractions()
    leading = max(fractions, key=fractions.get)
    assert leading == "No nodes available"


def test_deletion_percentages_bounded(study):
    for pct in study.deletion_percent_by_day().values():
        assert 0.0 <= pct <= 100.0


def test_learner_monthly_percentages(study):
    monthly = study.learner_deletion_percent_by_month(days_per_month=1)
    assert set(monthly) == {0}
    assert 0.0 <= monthly[0] <= 100.0


def test_study_is_deterministic():
    a = run_failure_study(FailureStudyConfig(days=1, jobs_per_day=100,
                                             seed=9))
    b = run_failure_study(FailureStudyConfig(days=1, jobs_per_day=100,
                                             seed=9))
    assert a.jobs_submitted == b.jobs_submitted
    assert a.failed_pods_by_reason() == b.failed_pods_by_reason()
