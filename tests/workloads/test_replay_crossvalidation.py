"""Cross-validation: the fast Figure-3 replayer vs the full simulator.

The replayer (repro.analysis.schedreplay) exists for speed; this test
checks its core conclusion (Pack delays fewer jobs than Spread) against
the same miniature trace executed on the full Kubernetes simulation with
real pods, controllers and the scheduler.
"""


from repro.analysis import NodeSpec, PlacementReplayer, QUEUE_THRESHOLD_S
from repro.docker import Image
from repro.kube import Cluster, NodeCapacity, SchedulerConfig
from repro.kube.objects import ContainerSpec, ObjectMeta, Pod, PodSpec
from repro.kube.resources import ResourceRequest
from repro.sim import Environment, RngRegistry
from repro.workloads import ProductionTrace, TraceConfig

DAYS = 2
NODES = (NodeSpec(4, 4, "K80"), NodeSpec(4, 4, "V100"))


def mini_trace():
    config = TraceConfig(days=DAYS, base_jobs_per_day=55.0,
                         trend_per_day=0.0)
    jobs = ProductionTrace(RngRegistry(11), config).generate()
    # Shrink durations so the mini cluster reaches the contended regime.
    return jobs


def run_full_sim(policy, jobs):
    env = Environment()
    cluster = Cluster(env, RngRegistry(5),
                      SchedulerConfig(policy=policy,
                                      nondeterministic_order=False))
    cluster.push_image(Image("learner", size_bytes=1e6))
    for spec_index, spec in enumerate(NODES):
        for i in range(spec.count):
            cluster.add_node(
                f"n{spec_index}-{i}",
                NodeCapacity(cpus=64, memory_gb=512, gpus=spec.gpus,
                             gpu_type=spec.gpu_type))
    pods_by_job = {}

    def submit(job):
        yield env.timeout(job.arrival_s)
        pods = []
        for i in range(job.learners):
            def sleeper(container, duration=job.duration_s):
                yield env.timeout(duration)
                return 0

            pod = Pod(
                meta=ObjectMeta(name=f"{job.job_id}-{i}",
                                labels={"type": "learner"}),
                spec=PodSpec(
                    containers=[ContainerSpec("m", "learner:latest",
                                              sleeper)],
                    resources=ResourceRequest(
                        cpus=4.0 * job.gpus_per_learner, memory_gb=16,
                        gpus=job.gpus_per_learner,
                        gpu_type=job.gpu_type)))
            pods.append(pod)
            cluster.api.create_pod(pod)
        pods_by_job[job.job_id] = pods

    for job in jobs:
        env.process(submit(job), name=f"submit:{job.job_id}")
    env.run(until=(DAYS + 2) * 86400.0)
    delayed = 0
    for job in jobs:
        pods = pods_by_job.get(job.job_id, [])
        starts = [p.scheduled_at for p in pods]
        if not pods or any(s is None for s in starts):
            delayed += 1
        elif max(starts) - job.arrival_s > QUEUE_THRESHOLD_S:
            delayed += 1
    return delayed


def test_replayer_agrees_with_full_simulation():
    jobs = mini_trace()
    replay = {policy: PlacementReplayer(policy, NODES).replay(
        list(jobs), DAYS).total_delayed for policy in ("spread", "pack")}
    full = {policy: run_full_sim(policy, jobs)
            for policy in ("spread", "pack")}
    # Both methodologies agree on the ordering.
    assert replay["pack"] <= replay["spread"]
    assert full["pack"] <= full["spread"]
    # And on rough magnitude (within a factor-of-two band when nonzero).
    for policy in ("spread", "pack"):
        a, b = replay[policy], full[policy]
        if max(a, b) >= 5:
            assert min(a, b) * 3 >= max(a, b), (policy, replay, full)
