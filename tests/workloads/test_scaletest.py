"""Tests for the scale-test workload (Table 7 / Figure 5), at tiny scale."""

import pytest

from repro.workloads import (
    BATCHES,
    ScaleTestConfig,
    degradation_percent,
    run_scale_test,
)

# Full iteration counts preserve the contention regime; only the cluster
# and job counts shrink.
TINY = ScaleTestConfig(scale=0.06)


def test_invalid_load_rejected():
    with pytest.raises(ValueError):
        run_scale_test("medium", TINY)


def test_batch_specs_match_table7():
    mix = {(b.name, b.jobs_light, b.jobs_heavy) for b in BATCHES}
    assert ("K80-batch1", 30, 300) in mix
    assert ("K80-batch2", 24, 240) in mix
    assert ("P100-batch3", 11, 110) in mix
    assert ("V100-batch4", 5, 50) in mix
    starts = [b.start_s for b in BATCHES]
    assert starts == sorted(starts)


def test_light_load_all_jobs_complete():
    result = run_scale_test("light", TINY, seed=0)
    assert result.failed_jobs == 0
    for batch in result.batches.values():
        assert batch.completed == batch.jobs


def test_runtime_ordering_by_gpu_generation():
    result = run_scale_test("light", TINY, seed=0)
    k80 = result.batches["K80-batch1"].mean_runtime_s
    p100 = result.batches["P100-batch3"].mean_runtime_s
    v100 = result.batches["V100-batch4"].mean_runtime_s
    assert v100 < p100 < k80


def test_heavy_load_degrades_fast_gpus_most():
    light = run_scale_test("light", TINY, seed=0)
    heavy = run_scale_test("heavy", TINY, seed=0)
    degradation = degradation_percent(light, heavy)
    assert degradation["V100-batch4"] > degradation["K80-batch1"]
    assert degradation["K80-batch1"] < 20.0
    assert degradation["V100-batch4"] > 10.0


def test_aggregate_throughput_positive_and_scaled():
    result = run_scale_test("heavy", TINY, seed=0)
    assert result.aggregate_images_per_s > 0
    assert result.total_jobs == sum(
        TINY.scaled(b.jobs_heavy) for b in BATCHES)
