"""Tests for the Figure 3b placement replayer."""

import pytest

from repro.analysis import (
    NodeSpec,
    PlacementReplayer,
    compare_policies,
)
from repro.sim import RngRegistry
from repro.workloads import ProductionTrace, TraceConfig, TraceJob

SMALL_NODES = (NodeSpec(2, 4, "K80"),)


def job(job_id, arrival, duration, learners=1, gpus=1, gpu_type="K80"):
    return TraceJob(job_id, arrival, duration, learners, gpus, gpu_type)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        PlacementReplayer("roundrobin")


def test_single_job_placed_immediately():
    replayer = PlacementReplayer("pack", SMALL_NODES)
    result = replayer.replay([job("a", 0.0, 100.0)], days=1)
    assert result.queue_times["a"] == 0.0
    assert result.total_delayed == 0


def test_job_waits_for_release():
    replayer = PlacementReplayer("pack", SMALL_NODES)
    jobs = [job("hog", 0.0, 2000.0, learners=2, gpus=4),
            job("late", 1.0, 100.0, learners=2, gpus=4)]
    result = replayer.replay(jobs, days=1)
    assert result.queue_times["late"] == pytest.approx(1999.0)
    assert result.total_delayed == 1  # >15 min


def test_pack_beats_spread_on_fragmentation():
    """The Section 3.4 example as a replay: small jobs then a 4-GPU job."""
    nodes = (NodeSpec(4, 4, "K80"),)
    jobs = [job(f"small-{i}", 0.0, 10_000.0) for i in range(4)]
    jobs.append(job("big", 10.0, 100.0, learners=1, gpus=4))
    for policy, expect_delay in (("spread", True), ("pack", False)):
        result = PlacementReplayer(policy, nodes).replay(list(jobs),
                                                         days=1)
        delayed = result.queue_times["big"] > 900
        assert delayed == expect_delay, policy


def test_gpu_type_respected():
    nodes = (NodeSpec(1, 4, "K80"), NodeSpec(1, 4, "V100"))
    replayer = PlacementReplayer("pack", nodes)
    result = replayer.replay(
        [job("v", 0.0, 50.0, gpu_type="V100"),
         job("k", 0.0, 50.0, gpu_type="K80")], days=1)
    assert result.total_delayed == 0


def test_learners_of_job_all_placed_or_none():
    nodes = (NodeSpec(1, 4, "K80"),)
    replayer = PlacementReplayer("pack", nodes)
    # 2 learners x 4 GPUs cannot fit on one 4-GPU node: queued forever.
    result = replayer.replay([job("big", 0.0, 10.0, learners=2, gpus=4)],
                             days=1)
    assert "big" not in result.queue_times
    assert result.total_delayed == 1


def test_compare_policies_on_trace_pack_wins():
    trace = ProductionTrace(RngRegistry(42), TraceConfig(days=7))
    jobs = trace.generate()
    results = compare_policies(jobs, 7)
    spread = results["spread"].total_delayed
    pack = results["pack"].total_delayed
    assert pack < spread


def test_percent_delayed_by_day_bounds():
    trace = ProductionTrace(RngRegistry(1), TraceConfig(days=5))
    jobs = trace.generate()
    result = PlacementReplayer("pack").replay(jobs, 5)
    for _day, pct in result.percent_delayed_by_day().items():
        assert 0.0 <= pct <= 100.0
