"""Tests for the Figure 4 synthetic gang workloads."""


from repro.analysis import probability_of_zero
from repro.workloads import GANG_WORKLOADS, run_gang_experiment


def test_gang_scheduler_never_deadlocks():
    """The paper's headline: zero deadlocks and zero idle GPUs in every
    gang-scheduled run."""
    for learners, gpus in GANG_WORKLOADS:
        for seed in range(5):
            result = run_gang_experiment(learners, gpus, gang=True,
                                         seed=seed)
            assert result.deadlocked_learners == 0
            assert result.idle_gpus == 0


def test_gang_scheduler_ideal_split_for_2x1():
    """2L x 1GPU: demand 100 vs supply 60 -> exactly 30 jobs run."""
    result = run_gang_experiment(2, 1, gang=True, seed=0)
    assert result.fully_scheduled_jobs == 30
    assert result.fully_queued_jobs == 20


def test_default_scheduler_deadlocks_sometimes():
    results = [run_gang_experiment(2, 1, gang=False, seed=s)
               for s in range(10)]
    deadlocks = [r.deadlocked_learners for r in results]
    assert any(d > 0 for d in deadlocks)
    assert probability_of_zero(deadlocks) < 1.0


def test_deadlocked_learners_hold_idle_gpus():
    for seed in range(10):
        result = run_gang_experiment(2, 2, gang=False, seed=seed)
        assert result.idle_gpus == 2 * \
            result.deadlocked_learners // 1 * 1 or \
            result.idle_gpus >= result.deadlocked_learners
        # Every deadlocked learner holds exactly its GPUs.
        assert result.idle_gpus == result.deadlocked_learners * 2


def test_results_deterministic_per_seed():
    a = run_gang_experiment(4, 1, gang=False, seed=3)
    b = run_gang_experiment(4, 1, gang=False, seed=3)
    assert a == b
