"""Tests for the production trace generator (Figure 3a shape)."""


from repro.sim import RngRegistry
from repro.workloads import ProductionTrace, TraceConfig, arrivals_by_day


def make_trace(days=14, seed=0, **kwargs):
    return ProductionTrace(RngRegistry(seed),
                           TraceConfig(days=days, **kwargs))


def test_deterministic_given_seed():
    a = make_trace(seed=5).generate()
    b = make_trace(seed=5).generate()
    assert [(j.arrival_s, j.duration_s) for j in a] == \
        [(j.arrival_s, j.duration_s) for j in b]


def test_different_seeds_differ():
    a = make_trace(seed=1).generate()
    b = make_trace(seed=2).generate()
    assert [(j.arrival_s) for j in a] != [(j.arrival_s) for j in b]


def test_arrivals_sorted():
    jobs = make_trace().generate()
    times = [j.arrival_s for j in jobs]
    assert times == sorted(times)


def test_daily_counts_within_paper_range():
    """Figure 3a: 200-1400 jobs arriving per day."""
    jobs = make_trace(days=28).generate()
    counts = arrivals_by_day(jobs, 28)
    assert all(200 <= c <= 1400 for c in counts.values()), counts


def test_weekend_dip():
    jobs = make_trace(days=28).generate()
    counts = arrivals_by_day(jobs, 28)
    weekday = [counts[d] for d in range(28) if d % 7 < 5]
    weekend = [counts[d] for d in range(28) if d % 7 >= 5]
    assert sum(weekend) / len(weekend) < 0.7 * sum(weekday) / len(weekday)


def test_demand_trend_grows():
    trace = make_trace(days=60)
    # Compare identical weekdays so the weekly factor cancels out.
    assert trace.expected_arrivals(56) > trace.expected_arrivals(0)
    assert trace.expected_arrivals(58) > trace.expected_arrivals(2)


def test_job_fields_sane():
    for job in make_trace(days=3).generate():
        assert job.duration_s > 0
        assert job.learners in (1, 2, 4)
        assert job.gpus_per_learner in (1, 2, 4)
        assert job.gpu_type in ("K80", "V100")
        assert job.total_gpus == job.learners * job.gpus_per_learner


def test_durations_capped():
    config = TraceConfig(days=5)
    jobs = make_trace(days=5).generate()
    assert all(j.duration_s <= config.max_duration_s for j in jobs)


def test_size_mix_roughly_respected():
    jobs = make_trace(days=28).generate()
    single = sum(1 for j in jobs
                 if (j.learners, j.gpus_per_learner) == (1, 1))
    assert 0.40 < single / len(jobs) < 0.56
